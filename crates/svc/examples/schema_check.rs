//! Validates every JSON export under `target/obs-export/` against the
//! checked-in schemas in `schemas/`, as one CI step covering all formats:
//! metrics, Chrome trace, bottleneck analysis, perf trajectory, chunk
//! ledger, and flight dumps. Run after `obs_export` and the CLI `analyze`
//! step so the directory is populated; exits non-zero when a category is
//! missing entirely or any document fails validation.

use ocelot_svc::schema::validate;
use serde_json::Value;

/// Maps an export file name to its schema, or `None` for files the check
/// ignores (Prometheus text, folded profiles).
fn schema_for(file: &str) -> Option<&'static str> {
    match file {
        "metrics.json" => Some("metrics.schema.json"),
        "trace.json" => Some("trace.schema.json"),
        "bottleneck.json" | "analyze.json" => Some("bottleneck.schema.json"),
        "perf.json" => Some("perf.schema.json"),
        _ if file.starts_with("ledger") && file.ends_with(".json") => Some("ledger.schema.json"),
        _ if file.starts_with("flight-") && file.ends_with(".json") => Some("flightdump.schema.json"),
        _ => None,
    }
}

fn main() {
    let out_dir = std::path::Path::new("target/obs-export");
    let schema_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../schemas");
    let mut failures: Vec<String> = Vec::new();
    let mut checked: Vec<(String, &'static str)> = Vec::new();

    let entries = match std::fs::read_dir(out_dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("FAIL: cannot read {} ({e}) — run the obs_export example first", out_dir.display());
            std::process::exit(1);
        }
    };
    let mut files: Vec<String> =
        entries.filter_map(|e| e.ok()).filter_map(|e| e.file_name().into_string().ok()).collect();
    files.sort();

    for file in &files {
        let Some(schema_file) = schema_for(file) else { continue };
        let schema_text = match std::fs::read_to_string(format!("{schema_dir}/{schema_file}")) {
            Ok(t) => t,
            Err(e) => {
                failures.push(format!("{file}: cannot read schema {schema_file}: {e}"));
                continue;
            }
        };
        let schema: Value = match serde_json::from_str(&schema_text) {
            Ok(s) => s,
            Err(e) => {
                failures.push(format!("{schema_file} is not valid JSON: {e}"));
                continue;
            }
        };
        let text = match std::fs::read_to_string(out_dir.join(file)) {
            Ok(t) => t,
            Err(e) => {
                failures.push(format!("{file}: unreadable: {e}"));
                continue;
            }
        };
        match serde_json::from_str::<Value>(&text) {
            Ok(doc) => failures.extend(validate(&schema, &doc).into_iter().map(|err| format!("{file}: {err}"))),
            Err(e) => failures.push(format!("{file} is not valid JSON: {e}")),
        }
        checked.push((file.clone(), schema_file));
    }

    // Every schema category must have had at least one document; a refactor
    // that silently stops producing an export should fail here, not pass.
    for required in [
        "metrics.schema.json",
        "trace.schema.json",
        "bottleneck.schema.json",
        "perf.schema.json",
        "ledger.schema.json",
        "flightdump.schema.json",
    ] {
        if !checked.iter().any(|(_, s)| *s == required) {
            failures.push(format!("no export covered {required}"));
        }
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        eprintln!("schema_check: {} failure(s)", failures.len());
        std::process::exit(1);
    }
    for (file, schema_file) in &checked {
        println!("  {file} ✓ {schema_file}");
    }
    println!("schema_check: OK ({} document(s) validated)", checked.len());
}
