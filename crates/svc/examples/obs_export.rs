//! End-to-end observability export check, run by CI.
//!
//! Boots the service with tracing, pushes a small multi-tenant batch
//! through it, exports all three formats (Prometheus text, metrics JSON,
//! Chrome trace JSON), validates the JSON exports against the checked-in
//! schemas in `schemas/`, and asserts the per-stage histograms the paper's
//! pipeline phases feed are actually present. Exits non-zero on any
//! malformed or empty export.

use ocelot::orchestrator::Strategy;
use ocelot_datagen::Application;
use ocelot_netsim::SiteId;
use ocelot_svc::schema::validate;
use ocelot_svc::{JobSpec, Service, ServiceConfig};
use serde_json::Value;

fn main() {
    let mut failures: Vec<String> = Vec::new();

    // Share one handle between the service and the process global, as the
    // CLI does, so sz's wall-clock instrumentation (read via the global)
    // lands in the same registry the service exports.
    let shared = ocelot_obs::Obs::enabled();
    ocelot_obs::install_global(&shared);
    let cfg = ServiceConfig { profile_scale: 6, obs: Some(shared), ..ServiceConfig::default() };
    let svc = Service::start(cfg);
    for i in 0..3 {
        let tenant = ["climate", "seismic"][i % 2];
        let spec = JobSpec {
            tenant: tenant.to_string(),
            app: Application::Miranda,
            error_bound: 1e-3,
            strategy: Strategy::Compressed,
            from: SiteId::Anvil,
            to: SiteId::Cori,
        };
        svc.submit(spec).expect("submit");
    }
    svc.drain();

    let obs = svc.obs();
    let registry = obs.registry().expect("service obs is enabled");
    let recorder = obs.recorder().expect("service obs is enabled");

    let out_dir = std::path::Path::new("target/obs-export");
    std::fs::create_dir_all(out_dir).expect("create output dir");
    let prom = ocelot_obs::export::prometheus_text(registry);
    let metrics_json = ocelot_obs::export::metrics_json(registry);
    let trace_json = ocelot_obs::export::chrome_trace(&recorder.spans());
    std::fs::write(out_dir.join("metrics.prom"), &prom).expect("write metrics.prom");
    std::fs::write(out_dir.join("metrics.json"), &metrics_json).expect("write metrics.json");
    std::fs::write(out_dir.join("trace.json"), &trace_json).expect("write trace.json");

    if prom.is_empty() {
        failures.push("Prometheus exposition is empty".to_string());
    }

    // Validate the JSON exports against the checked-in schemas.
    let schema_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../schemas");
    for (label, text, schema_file) in
        [("metrics.json", &metrics_json, "metrics.schema.json"), ("trace.json", &trace_json, "trace.schema.json")]
    {
        let schema_text = std::fs::read_to_string(format!("{schema_dir}/{schema_file}"))
            .unwrap_or_else(|e| panic!("read {schema_file}: {e}"));
        let schema: Value = serde_json::from_str(&schema_text).unwrap_or_else(|e| panic!("parse {schema_file}: {e}"));
        match serde_json::from_str::<Value>(text) {
            Ok(doc) => {
                failures.extend(validate(&schema, &doc).into_iter().map(|err| format!("{label}: {err}")));
            }
            Err(e) => {
                failures.push(format!("{label} is not valid JSON: {e}"));
            }
        }
    }

    // The pipeline's stage histograms must be present and populated.
    for name in [
        "ocelot_core_compression_seconds",
        "ocelot_core_queue_wait_seconds",
        "ocelot_core_transfer_seconds",
        "ocelot_core_decompression_seconds",
        "ocelot_svc_latency_seconds",
        "ocelot_sz_compress_seconds",
    ] {
        match registry.get(name) {
            Some(ocelot_obs::metrics::Metric::Histogram(h)) if h.count() > 0 => {}
            Some(_) => failures.push(format!("{name} exists but recorded no observations")),
            None => failures.push(format!("{name} missing from registry")),
        }
    }

    // Every recorded span tree must be internally consistent.
    failures.extend(recorder.validate(2).into_iter().map(|v| format!("span violation: {v}")));
    if recorder.spans().is_empty() {
        failures.push("no spans recorded".to_string());
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        eprintln!("obs_export: {} failure(s)", failures.len());
        std::process::exit(1);
    }
    println!(
        "obs_export: OK ({} metrics, {} spans; artifacts in {})",
        registry.len(),
        recorder.spans().len(),
        out_dir.display()
    );
}
