//! End-to-end observability export check, run by CI.
//!
//! Boots the service with tracing and an intentionally unreachable latency
//! SLO, pushes a small multi-tenant batch through it, exports all formats
//! (Prometheus text, metrics JSON, Chrome trace JSON, bottleneck analysis,
//! flight dumps), validates the JSON exports against the checked-in
//! schemas in `schemas/`, and asserts the per-stage histograms the paper's
//! pipeline phases feed are actually present. Exits non-zero on any
//! malformed or empty export.

use ocelot::orchestrator::Strategy;
use ocelot_datagen::Application;
use ocelot_netsim::SiteId;
use ocelot_obs::slo::{Severity, SloKind, SloRule};
use ocelot_svc::schema::validate;
use ocelot_svc::{JobSpec, Service, ServiceConfig};
use serde_json::Value;

fn main() {
    let mut failures: Vec<String> = Vec::new();

    // Share one handle between the service and the process global, as the
    // CLI does, so sz's wall-clock instrumentation (read via the global)
    // lands in the same registry the service exports. This one handle
    // serves two service batches plus the perf scenarios below, and the
    // no-drops assertion needs headroom over the single-batch default
    // flight capacity — the margin, not the ceiling, is what it checks.
    let shared = ocelot_obs::Obs::with_flight_capacity(4 * ocelot_obs::flight::DEFAULT_CAPACITY);
    ocelot_obs::install_global(&shared);
    // Continuous profiler on the same registry: the sz kernel probes drain
    // per-kernel histograms into it, which this run validates below.
    ocelot_obs::prof::install_global(&ocelot_obs::prof::Profiler::with_obs(shared.clone()));
    let out_dir = std::path::Path::new("target/obs-export");
    std::fs::create_dir_all(out_dir).expect("create output dir");
    // A 1 ns p99 target cannot be met, so the second finished job forces an
    // SLO breach whose flight dump lands in the artifact directory.
    let slo = vec![SloRule {
        name: "latency-p99".to_string(),
        severity: Severity::Critical,
        fast_window_s: 1e6,
        slow_window_s: 1e6,
        kind: SloKind::LatencyP99 { histogram: "ocelot_svc_latency_seconds".to_string(), max_s: 1e-9 },
    }];
    let cfg = ServiceConfig {
        profile_scale: 6,
        obs: Some(shared),
        slo,
        artifact_dir: Some(out_dir.to_path_buf()),
        ..ServiceConfig::default()
    };
    let svc = Service::start(cfg);
    for i in 0..3 {
        let tenant = ["climate", "seismic"][i % 2];
        let spec = JobSpec {
            tenant: tenant.to_string(),
            app: Application::Miranda,
            error_bound: 1e-3,
            strategy: Strategy::Compressed,
            from: SiteId::Anvil,
            to: SiteId::Cori,
        };
        svc.submit(spec).expect("submit");
    }
    svc.drain();

    let obs = svc.obs();
    let registry = obs.registry().expect("service obs is enabled");
    let recorder = obs.recorder().expect("service obs is enabled");

    let prom = ocelot_obs::export::prometheus_text(registry);
    let metrics_json = ocelot_obs::export::metrics_json(registry);
    let trace_json = ocelot_obs::export::chrome_trace(&recorder.spans());
    let analysis = svc.analyze();
    let analysis_json = serde_json::to_string_pretty(&analysis).expect("serialize analysis");
    std::fs::write(out_dir.join("metrics.prom"), &prom).expect("write metrics.prom");
    std::fs::write(out_dir.join("metrics.json"), &metrics_json).expect("write metrics.json");
    std::fs::write(out_dir.join("trace.json"), &trace_json).expect("write trace.json");
    std::fs::write(out_dir.join("bottleneck.json"), &analysis_json).expect("write bottleneck.json");

    if prom.is_empty() {
        failures.push("Prometheus exposition is empty".to_string());
    }

    // The unreachable SLO must have fired and snapped a dump that the
    // journal's alert record references by file name.
    let alerts = svc.alerts();
    let dumps = svc.flight_dumps();
    let mut dump_jsons: Vec<(String, String)> = Vec::new();
    if alerts.is_empty() {
        failures.push("unreachable latency SLO never fired".to_string());
    }
    for alert in &alerts {
        match alert.flight_dump.as_deref() {
            Some(file) if dumps.iter().any(|d| d.file == file) => {}
            Some(file) => failures.push(format!("alert '{}' references missing dump '{file}'", alert.rule)),
            None => failures.push(format!("alert '{}' has no flight dump reference", alert.rule)),
        }
    }
    if dumps.is_empty() {
        failures.push("SLO breach snapped no flight dump".to_string());
    }
    for dump in &dumps {
        if !out_dir.join(&dump.file).is_file() {
            failures.push(format!("dump '{}' was not written to the artifact dir", dump.file));
        }
        dump_jsons.push((dump.file.clone(), serde_json::to_string(dump).expect("serialize dump")));
    }

    // The happy path must never lose flight events to ring contention
    // (`obs::flight` counts drops instead of discarding them silently).
    if let Some(flight) = obs.flight() {
        let dropped = flight.dropped();
        if dropped != 0 {
            failures.push(format!("flight recorder dropped {dropped} event(s) on the happy path"));
        }
    } else {
        failures.push("enabled obs handle has no flight recorder".to_string());
    }

    // The latency histogram must carry at least one (job, value) exemplar.
    // (A parse failure is reported by the schema loop below.)
    if let Ok(doc) = serde_json::from_str::<Value>(&metrics_json) {
        let has_exemplar = doc
            .get("metrics")
            .and_then(Value::as_array)
            .into_iter()
            .flatten()
            .filter(|m| m.get("name").and_then(Value::as_str) == Some("ocelot_svc_latency_seconds"))
            .flat_map(|m| m.get("buckets").and_then(Value::as_array).into_iter().flatten())
            .any(|b| b.get("exemplar").is_some());
        if !has_exemplar {
            failures.push("latency histogram exports no bucket exemplar".to_string());
        }
    }

    // A second, streamed service exercises the chunk-lifecycle ledger end
    // to end. It shares the process-global obs handle (a private recorder
    // would cross thread-local span stacks with the global one sz uses);
    // its own ledger still keeps its chunk events separate from any other
    // service's.
    let ledger_json = {
        use ocelot_obs::ledger::check_causality;
        let streamed_cfg = ServiceConfig {
            workers: 1,
            stream_window: 4,
            codec_threads: 2,
            profile_scale: 6,
            obs: Some(obs.clone()),
            artifact_dir: Some(out_dir.to_path_buf()),
            ..ServiceConfig::default()
        };
        let streamed = Service::start(streamed_cfg);
        streamed
            .submit(JobSpec {
                tenant: "climate".to_string(),
                app: Application::Miranda,
                error_bound: 1e-3,
                strategy: Strategy::Compressed,
                from: SiteId::Anvil,
                to: SiteId::Cori,
            })
            .expect("submit streamed job");
        streamed.drain();
        let events = streamed.chunk_events(ocelot_svc::JobId(0));
        if events.is_empty() {
            failures.push("streamed service recorded no chunk-ledger events".to_string());
        }
        let violations = check_causality(&events, 0);
        failures.extend(violations.into_iter().map(|v| format!("ledger causality: {v}")));
        if !out_dir.join("ledger-0.json").is_file() {
            failures.push("service did not persist ledger-0.json to the artifact dir".to_string());
        }
        let js = ocelot_svc::ledger_json(0, &events);
        std::fs::write(out_dir.join("ledger.json"), &js).expect("write ledger.json");
        js
    };

    // Exercise the perf-trajectory machinery exactly as `ocelot perf record`
    // does: run the built-in kernel micro-scenarios at the smallest scale,
    // append the record, and validate the written trajectory against
    // schemas/perf.schema.json alongside the other exports.
    let perf_record = ocelot::perf::run_builtin_scenarios("obs_export", 1, 1);
    let perf_path = out_dir.join("perf.json");
    let _ = std::fs::remove_file(&perf_path); // one fresh record per run
    let perf_json = match ocelot::perf::append_record(&perf_path, "kernels", perf_record) {
        Ok(_) => std::fs::read_to_string(&perf_path).expect("read back perf.json"),
        Err(e) => {
            failures.push(format!("perf trajectory append failed: {e}"));
            String::new()
        }
    };
    let folded = ocelot_obs::prof::global().expect("profiler installed above").folded();
    std::fs::write(out_dir.join("profile.folded"), &folded).expect("write profile.folded");
    if !folded.lines().any(|l| l.contains(';')) {
        failures.push("folded profile has no scope;kernel stack lines".to_string());
    }

    // Validate the JSON exports against the checked-in schemas.
    let schema_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../schemas");
    let mut documents: Vec<(String, &str, &str)> = vec![
        ("metrics.json".to_string(), &metrics_json, "metrics.schema.json"),
        ("trace.json".to_string(), &trace_json, "trace.schema.json"),
        ("bottleneck.json".to_string(), &analysis_json, "bottleneck.schema.json"),
        ("ledger.json".to_string(), &ledger_json, "ledger.schema.json"),
    ];
    if !perf_json.is_empty() {
        documents.push(("perf.json".to_string(), &perf_json, "perf.schema.json"));
    }
    for (file, js) in &dump_jsons {
        documents.push((file.clone(), js, "flightdump.schema.json"));
    }
    for (label, text, schema_file) in documents {
        let schema_text = std::fs::read_to_string(format!("{schema_dir}/{schema_file}"))
            .unwrap_or_else(|e| panic!("read {schema_file}: {e}"));
        let schema: Value = serde_json::from_str(&schema_text).unwrap_or_else(|e| panic!("parse {schema_file}: {e}"));
        match serde_json::from_str::<Value>(text) {
            Ok(doc) => {
                failures.extend(validate(&schema, &doc).into_iter().map(|err| format!("{label}: {err}")));
            }
            Err(e) => {
                failures.push(format!("{label} is not valid JSON: {e}"));
            }
        }
    }

    // The pipeline's stage histograms must be present and populated.
    for name in [
        "ocelot_core_compression_seconds",
        "ocelot_core_queue_wait_seconds",
        "ocelot_core_transfer_seconds",
        "ocelot_core_decompression_seconds",
        "ocelot_svc_latency_seconds",
        "ocelot_sz_compress_seconds",
        // Kernel-level attribution from the continuous profiler: the perf
        // scenarios above must have drained the sz hot-path probes.
        "ocelot_sz_kernel_predict_seconds",
        "ocelot_sz_kernel_huffman_encode_seconds",
        "ocelot_sz_kernel_frame_crc_seconds",
    ] {
        match registry.get(name) {
            Some(ocelot_obs::metrics::Metric::Histogram(h)) if h.count() > 0 => {}
            Some(_) => failures.push(format!("{name} exists but recorded no observations")),
            None => failures.push(format!("{name} missing from registry")),
        }
    }

    // The profiler's self-overhead gauge must be exported and within budget.
    match registry.get(ocelot_obs::prof::OVERHEAD_RATIO_GAUGE) {
        Some(ocelot_obs::metrics::Metric::Gauge(g)) => {
            let ratio = g.get();
            if !(0.0..0.02).contains(&ratio) {
                failures.push(format!("profiler overhead ratio {ratio} outside [0, 2%) budget"));
            }
        }
        _ => failures.push(format!("{} gauge missing from registry", ocelot_obs::prof::OVERHEAD_RATIO_GAUGE)),
    }

    // Every recorded span tree must be internally consistent.
    failures.extend(recorder.validate(2).into_iter().map(|v| format!("span violation: {v}")));
    if recorder.spans().is_empty() {
        failures.push("no spans recorded".to_string());
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        eprintln!("obs_export: {} failure(s)", failures.len());
        std::process::exit(1);
    }
    println!(
        "obs_export: OK ({} metrics, {} spans, {} alert(s), {} flight dump(s); artifacts in {})",
        registry.len(),
        recorder.spans().len(),
        alerts.len(),
        dumps.len(),
        out_dir.display()
    );
}
