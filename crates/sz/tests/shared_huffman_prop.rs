//! Blob-level property tests for the shared-Huffman container path:
//! multi-chunk blobs (shared table engaged, with or without local-table
//! escapes in later chunks) must compress to the same bytes at any thread
//! count and decode to identical bits at 1/2/4/8 threads.

use ocelot_sz::{compress, decompress_with_threads, Dataset, LossyConfig};
use proptest::prelude::*;

/// Smooth head, optionally rough tail: when `rough_tail` is set, the later
/// chunks see wide-band noise whose quantization codes escape the shared
/// table built from the smooth first chunk, exercising the per-chunk
/// local-table fallback inside a shared-table blob.
fn mixed_field(dims: &[usize], seed: u64, rough_tail: bool) -> Dataset<f32> {
    let n: usize = dims.iter().product();
    let mut state = seed | 1;
    let mut flat = 0usize;
    Dataset::from_fn(dims.to_vec(), move |idx| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let noise = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
        let smooth: f32 = idx.iter().map(|&c| c as f32 * 0.11).sum::<f32>().sin();
        let amp = if rough_tail && flat > n / 2 { 500.0 } else { 0.0 };
        flat += 1;
        smooth + noise * amp
    })
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn shared_table_blobs_decode_identically_across_threads(
        n0 in 24usize..48,
        seed in any::<u64>(),
        rough_tail in any::<bool>(),
    ) {
        let dims = vec![n0, 12, 12];
        let data = mixed_field(&dims, seed, rough_tail);
        // Pinned chunk layout, > 1 chunk: the shared table engages, and the
        // blob must not depend on the compressing thread count.
        let cfg = LossyConfig::sz3_abs(1e-3).with_chunk_points(Some(data.len() / 5 + 1));
        let one = compress(&data, &cfg.with_threads(1)).unwrap();
        let four = compress(&data, &cfg.with_threads(4)).unwrap();
        prop_assert_eq!(one.blob.as_bytes(), four.blob.as_bytes(), "blob bytes must not depend on thread count");

        let reference = decompress_with_threads::<f32>(&one.blob, 1).unwrap();
        for threads in [2usize, 4, 8] {
            let out = decompress_with_threads::<f32>(&one.blob, threads).unwrap();
            prop_assert_eq!(out.dims(), reference.dims());
            prop_assert_eq!(
                bits(out.values()),
                bits(reference.values()),
                "decode at {} threads differs from 1 thread",
                threads
            );
        }
    }
}
