//! Backward compatibility with version-2 (pre-chunking, monolithic) blobs.
//!
//! The fixtures below are byte dumps of blobs produced by the released
//! monolithic writer, hard-coded so the legacy decode path is exercised
//! against real v2 bytes — not against whatever the current writer emits.
//! If these tests fail, released archives have become unreadable.

use ocelot_sz::codec::{Codec, SzCodec, ZfpCodec};
use ocelot_sz::{decompress, decompress_with_threads, CompressedBlob, Dataset, SzError};

/// v2 blob: the prediction pipeline (`LossyConfig::sz3_abs(1e-3)`) over the
/// reference 6×7 field.
const GOLDEN_V1_PREDICTION: &str = "4f43535a020000000206000000000000000700000000000000fca9f1d24d62503f03010080000000000000000000000000000000000000500000000000000049000000000000000f040800000000800000014c800000036605000b04aa7e0000049981000004f405000604a780000005fa050001042a2c0004070000000d08000d007bbb75f7df924b6dcccc000000ab04d772";

/// v2 blob: the transform codec (`zfp::compress(&data, 1e-3)`) over the same
/// field.
const GOLDEN_V1_TRANSFORM: &str = "4f43535a020001000206000000000000000700000000000000fca9f1d24d62503f0000000000004e000000000000005a00000000000000230f0001001dfc0fff030000d3040000008803000000290000000002001cfc1edf0280013f1900100701001f647f00006e000000570000002b1400050cc40457200f150000001b68cfbc";

/// The dataset both fixtures were generated from.
fn reference_field() -> Dataset<f32> {
    Dataset::from_fn(vec![6, 7], |i| ((i[0] as f32) * 0.7).sin() + (i[1] as f32) * 0.25)
}

fn unhex(s: &str) -> Vec<u8> {
    (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("valid hex")).collect()
}

#[test]
fn v1_prediction_blob_still_decodes() {
    let blob = CompressedBlob::from_bytes(unhex(GOLDEN_V1_PREDICTION)).expect("legacy framing accepted");
    let header = blob.header().expect("legacy header parses");
    assert_eq!(header.dims, vec![6, 7]);
    let data = reference_field();
    let restored = decompress::<f32>(&blob).expect("legacy prediction blob decodes");
    for (a, b) in data.values().iter().zip(restored.values()) {
        assert!((a - b).abs() as f64 <= header.abs_eb + 1e-9, "bound violated: {a} vs {b}");
    }
}

#[test]
fn v1_transform_blob_still_decodes() {
    let blob = CompressedBlob::from_bytes(unhex(GOLDEN_V1_TRANSFORM)).expect("legacy framing accepted");
    let data = reference_field();
    let restored = decompress::<f32>(&blob).expect("legacy transform blob decodes");
    for (a, b) in data.values().iter().zip(restored.values()) {
        assert!((a - b).abs() <= 1e-3 + 1e-9, "bound violated: {a} vs {b}");
    }
}

#[test]
fn v1_blobs_decode_through_the_codec_trait_too() {
    let pred = CompressedBlob::from_bytes(unhex(GOLDEN_V1_PREDICTION)).unwrap();
    let tran = CompressedBlob::from_bytes(unhex(GOLDEN_V1_TRANSFORM)).unwrap();
    assert!(SzCodec.decompress::<f32>(&pred).is_ok());
    assert!(ZfpCodec.decompress::<f32>(&tran).is_ok());
    // Legacy blobs hold a single stream; a multi-thread decode request must
    // still work (it simply has one chunk to decode).
    assert!(decompress_with_threads::<f32>(&pred, 4).is_ok());
}

#[test]
fn unknown_versions_are_rejected_with_a_typed_error() {
    let mut bytes = unhex(GOLDEN_V1_PREDICTION);
    bytes[4] = 0x7f; // forge version 0x007f
    bytes[5] = 0x00;
    match CompressedBlob::from_bytes(bytes) {
        Err(SzError::UnsupportedVersion(v)) => assert_eq!(v, 0x7f),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}
