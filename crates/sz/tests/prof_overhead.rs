//! Acceptance tests for the continuous profiler riding the sz hot path:
//! the probes must be close enough to free that profiling can stay on in
//! production (< 2 % on a ≥ 64 MB compress), the calibrated self-overhead
//! gauge must agree, and the folded flamegraph export must be byte-stable
//! for a fixed set of injected samples.

use ocelot_obs::ledger::{self, EventKind, Ledger};
use ocelot_obs::prof::{self, Kernel, Profiler, ScopeId};
use ocelot_sz::{compress, compress_streamed, Dataset, LossyConfig};
use std::time::Instant;

/// Both overhead tests install/uninstall process-global sinks; the harness
/// runs tests concurrently, so serialize them (and swallow poisoning — a
/// failed assertion in one must not mask the other's result).
static GLOBAL_SINKS: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// ~67 MB f32 field (4096×64×64), mixed smooth/oscillatory so every encode
/// kernel does real work.
fn big_field() -> Dataset<f32> {
    Dataset::from_fn(vec![4096, 64, 64], |i| {
        let x = i.iter().enumerate().map(|(d, &v)| (v as f32) * 0.013 * (d as f32 + 1.0)).sum::<f32>();
        x.sin() * 8.0 + 0.25 * x
    })
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_unstable_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn mad(xs: &[f64], center: f64) -> f64 {
    median(xs.iter().map(|x| (x - center).abs()).collect())
}

/// One warm-up plus `runs` timed compressions.
fn timed_compressions(data: &Dataset<f32>, cfg: &LossyConfig, runs: usize) -> Vec<f64> {
    std::hint::black_box(compress(data, cfg).expect("compress"));
    (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(compress(data, cfg).expect("compress"));
            t0.elapsed().as_secs_f64()
        })
        .collect()
}

/// Enabled-vs-disabled wall-clock delta on a 64 MB compress stays under the
/// 2 % budget (plus the measured noise floor, so a loaded runner does not
/// produce a false alarm), and the profiler's own calibrated overhead ratio
/// agrees. Skipped on small runners where timings are too unstable.
#[test]
fn probe_overhead_is_under_two_percent_on_64mb_compress() {
    let cores = std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    if cores < 4 {
        eprintln!("only {cores} core(s) — skipping overhead bound (timings too unstable)");
        return;
    }
    let _serial = GLOBAL_SINKS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let data = big_field();
    assert!(data.nbytes() >= 64 * 1024 * 1024, "field must be at least 64 MB");
    let cfg = LossyConfig::sz3_abs(1e-3);

    prof::uninstall_global();
    let disabled = timed_compressions(&data, &cfg, 3);

    let obs = ocelot_obs::Obs::enabled();
    let profiler = Profiler::with_obs(obs.clone());
    prof::install_global(&profiler);
    let enabled = timed_compressions(&data, &cfg, 3);
    prof::uninstall_global();

    let med_dis = median(disabled.clone());
    let med_en = median(enabled.clone());
    let delta = (med_en - med_dis) / med_dis;
    // Same noise-aware shape as ocelot::perf::diff_records: the 2 % budget
    // widens by 3× the combined MADs so scheduler jitter cannot flake CI.
    let allowance = 0.02 + 3.0 * (mad(&disabled, med_dis) + mad(&enabled, med_en)) / med_dis;
    assert!(
        delta < allowance,
        "profiling overhead {:.2}% exceeds budget {:.2}% (disabled {med_dis:.3}s, enabled {med_en:.3}s)",
        delta * 100.0,
        allowance * 100.0
    );

    // The profiler's own accounting must agree: calibrated probe cost ×
    // probes closed ÷ profiled time < 2 %, and the gauge exports it.
    let ratio = profiler.overhead_ratio();
    assert!((0.0..0.02).contains(&ratio), "calibrated overhead ratio {ratio} outside [0, 2%)");
    match obs.registry().expect("enabled obs").get(prof::OVERHEAD_RATIO_GAUGE) {
        Some(ocelot_obs::metrics::Metric::Gauge(g)) => {
            assert!(g.get() < 0.02, "exported overhead gauge {} outside budget", g.get());
        }
        other => panic!("{} not exported as a gauge: {other:?}", prof::OVERHEAD_RATIO_GAUGE),
    }

    // And the run actually profiled something: the compress kernels are in
    // the snapshot with real attribution.
    let snap = profiler.snapshot();
    assert!(snap.probes > 0, "no probes closed during the profiled compress");
    for kernel in [Kernel::Predict, Kernel::HuffmanEncode, Kernel::FrameCrc] {
        assert!(
            snap.stats.iter().any(|s| s.kernel == kernel && s.nanos > 0),
            "kernel {} missing from snapshot",
            kernel.name()
        );
    }
}

/// One warm-up plus `runs` timed *streamed* compressions (window 4, no-op
/// sink) — the path whose per-chunk sealed/encoded ledger emissions ride
/// the hot loop.
fn timed_streamed_compressions(data: &Dataset<f32>, cfg: &LossyConfig, runs: usize) -> Vec<f64> {
    let run = || std::hint::black_box(compress_streamed(data, cfg, 4, |_| Ok(())).expect("compress"));
    run();
    (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .collect()
}

/// Ledger + profiler enabled vs both disabled on the 64 MB *streamed*
/// compress: the combined observability tax stays under the same 2 %
/// budget (noise-widened like the probe test above), and the enabled run
/// actually captured per-chunk sealed/encoded events. Skipped on small
/// runners where timings are too unstable.
#[test]
fn ledger_overhead_is_under_two_percent_on_streamed_compress() {
    let cores = std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    if cores < 4 {
        eprintln!("only {cores} core(s) — skipping ledger overhead bound (timings too unstable)");
        return;
    }
    let _serial = GLOBAL_SINKS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let data = big_field();
    let cfg = LossyConfig::sz3_abs(1e-3);

    prof::uninstall_global();
    ledger::uninstall_global();
    let disabled = timed_streamed_compressions(&data, &cfg, 3);

    let obs = ocelot_obs::Obs::enabled();
    prof::install_global(&Profiler::with_obs(obs.clone()));
    let sink = Ledger::with_obs(&obs);
    ledger::install_global(&sink);
    let enabled = timed_streamed_compressions(&data, &cfg, 3);
    prof::uninstall_global();
    ledger::uninstall_global();

    let events = sink.drain();
    assert!(
        events.iter().any(|e| e.event == EventKind::Sealed) && events.iter().any(|e| e.event == EventKind::Encoded),
        "enabled run must capture sealed + encoded chunk events ({} event(s) drained)",
        events.len()
    );

    let med_dis = median(disabled.clone());
    let med_en = median(enabled.clone());
    let delta = (med_en - med_dis) / med_dis;
    let allowance = 0.02 + 3.0 * (mad(&disabled, med_dis) + mad(&enabled, med_en)) / med_dis;
    assert!(
        delta < allowance,
        "ledger+prof overhead {:.2}% exceeds budget {:.2}% (disabled {med_dis:.3}s, enabled {med_en:.3}s)",
        delta * 100.0,
        allowance * 100.0
    );
}

/// The folded flamegraph export is byte-for-byte reproducible for a fixed
/// set of injected samples (the golden below is what `ocelot perf record
/// --folded` hands to `inferno`/`flamegraph.pl`).
#[test]
fn folded_export_matches_golden() {
    let profiler = Profiler::detached();
    profiler.record_sample(ScopeId::COMPRESS, Kernel::Predict, 2_500_000, 64 << 20);
    profiler.record_sample(ScopeId::COMPRESS, Kernel::HuffmanEncode, 1_500_000, 16 << 20);
    profiler.record_sample(ScopeId::COMPRESS, Kernel::FrameCrc, 40_000, 16 << 20);
    profiler.record_sample(ScopeId::DECOMPRESS, Kernel::HuffmanDecode, 800_000, 16 << 20);
    profiler.record_sample(ScopeId::DECOMPRESS, Kernel::Predict, 600_000, 64 << 20);

    let golden = "\
compress.chunk;predict 2500
compress.chunk;huffman_encode 1500
compress.chunk;frame_crc 40
decompress.chunk;predict 600
decompress.chunk;huffman_decode 800
";
    assert_eq!(profiler.folded(), golden);

    // Every line is collapsed-stack shaped: `frame[;frame] <count>`.
    for line in profiler.folded().lines() {
        let (stack, count) = line.rsplit_once(' ').expect("space-separated count");
        assert!(!stack.is_empty());
        assert!(count.parse::<u64>().is_ok(), "count not numeric: {line}");
    }
}
