//! CI gate for chunk-parallel codec scaling: compresses a large synthetic
//! field serially and with 4 codec threads, and exits nonzero if the
//! 4-thread run is not faster. Run with `--release`; debug-build timings
//! are too noisy to gate on.
//!
//! ```text
//! cargo run --release -p ocelot-sz --example chunk_scaling_gate
//! ```

use ocelot_sz::{compress, decompress_with_threads, Dataset, LossyConfig};
use std::time::Instant;

fn field() -> Dataset<f32> {
    // Smooth + oscillatory mix, large enough (~64 MB) that per-chunk work
    // dwarfs thread startup.
    Dataset::from_fn(vec![256, 256, 256], |i| {
        let (x, y, z) = (i[0] as f32, i[1] as f32, i[2] as f32);
        (x * 0.031).sin() * (y * 0.017).cos() + (z * 0.011).sin() * 0.5 + (x + y + z) * 1e-4
    })
}

fn best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
    (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cores = std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    if cores < 2 {
        println!("only {cores} core(s) available — chunk scaling cannot manifest, skipping gate");
        return Ok(());
    }
    let data = field();
    let serial_cfg = LossyConfig::builder().rel(1e-3).threads(1).build()?;
    let parallel_cfg = serial_cfg.with_threads(4);

    let t1 = best_of(3, || compress(&data, &serial_cfg).expect("serial compression"));
    let t4 = best_of(3, || compress(&data, &parallel_cfg).expect("4-thread compression"));
    let blob = compress(&data, &parallel_cfg)?.blob;
    let d1 = best_of(3, || decompress_with_threads::<f32>(&blob, 1).expect("serial decode"));
    let d4 = best_of(3, || decompress_with_threads::<f32>(&blob, 4).expect("4-thread decode"));

    println!("compress:   serial {t1:.3}s, 4-thread {t4:.3}s ({:.2}x)", t1 / t4);
    println!("decompress: serial {d1:.3}s, 4-thread {d4:.3}s ({:.2}x)", d1 / d4);

    if t4 >= t1 {
        return Err(format!("4-thread compression ({t4:.3}s) not faster than serial ({t1:.3}s)").into());
    }
    if d4 >= d1 {
        return Err(format!("4-thread decompression ({d4:.3}s) not faster than serial ({d1:.3}s)").into());
    }
    Ok(())
}
