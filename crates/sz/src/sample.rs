//! Strided data sampling used by the quality predictor.
//!
//! The paper (§VIII-B) samples 1 % of the data (one point every 100) to
//! extract compressor-based features, cutting the prediction overhead from
//! >70 % to <5 % of the compression time.

use crate::ndarray::Dataset;
use crate::value::ScalarValue;

/// Returns every `stride`-th value (linearized order) as a 1-D dataset.
///
/// The sampled set keeps the large-scale statistics (range, entropy,
/// local-difference structure) of the original because scientific fields are
/// smooth at the sampling scale.
///
/// # Panics
/// Panics if `stride == 0`.
pub fn sample_stride<T: ScalarValue>(data: &Dataset<T>, stride: usize) -> Dataset<T> {
    assert!(stride > 0, "stride must be positive");
    let vals: Vec<T> = data.values().iter().step_by(stride).copied().collect();
    let n = vals.len().max(1);
    let vals = if vals.is_empty() { vec![T::zero()] } else { vals };
    Dataset::new(vec![n], vals).expect("1-D shape of sampled values is always valid")
}

/// Samples a fraction `frac` of the data (e.g. `0.01` for the paper's 1 %).
///
/// # Panics
/// Panics if `frac` is not in `(0, 1]`.
pub fn sample_fraction<T: ScalarValue>(data: &Dataset<T>, frac: f64) -> Dataset<T> {
    assert!(frac > 0.0 && frac <= 1.0, "fraction must be in (0, 1], got {frac}");
    let stride = (1.0 / frac).round().max(1.0) as usize;
    sample_stride(data, stride)
}

/// Samples a 2-D/3-D dataset on a coarse sub-grid, preserving rank.
///
/// Used where spatial structure matters to a feature (e.g. sampled Lorenzo
/// error): takes every `stride`-th point along each axis.
///
/// # Panics
/// Panics if `stride == 0`.
pub fn sample_grid<T: ScalarValue>(data: &Dataset<T>, stride: usize) -> Dataset<T> {
    assert!(stride > 0, "stride must be positive");
    let dims = data.dims();
    let new_dims: Vec<usize> = dims.iter().map(|&d| d.div_ceil(stride)).collect();
    Dataset::from_fn(new_dims, |idx| {
        let orig: Vec<usize> = idx.iter().zip(dims).map(|(&i, &d)| (i * stride).min(d - 1)).collect();
        data.get(&orig)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_sampling_takes_every_kth() {
        let d = Dataset::new(vec![10], (0..10).map(|i| i as f32).collect()).unwrap();
        let s = sample_stride(&d, 3);
        assert_eq!(s.values(), &[0.0, 3.0, 6.0, 9.0]);
    }

    #[test]
    fn fraction_one_percent_matches_paper() {
        let d = Dataset::from_fn(vec![100, 100], |i| (i[0] * 100 + i[1]) as f32);
        let s = sample_fraction(&d, 0.01);
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn fraction_one_keeps_everything() {
        let d = Dataset::from_fn(vec![25], |i| i[0] as f64);
        assert_eq!(sample_fraction(&d, 1.0).len(), 25);
    }

    #[test]
    fn grid_sampling_preserves_rank() {
        let d = Dataset::from_fn(vec![9, 9], |i| (i[0] * 9 + i[1]) as f32);
        let s = sample_grid(&d, 3);
        assert_eq!(s.dims(), &[3, 3]);
        assert_eq!(s.get(&[1, 1]), d.get(&[3, 3]));
    }

    #[test]
    fn oversized_stride_yields_single_value() {
        let d = Dataset::from_fn(vec![5], |i| i[0] as f32);
        let s = sample_stride(&d, 100);
        assert_eq!(s.values(), &[0.0]);
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn zero_fraction_panics() {
        let d = Dataset::<f32>::constant(vec![4], 0.0).unwrap();
        sample_fraction(&d, 0.0);
    }
}
