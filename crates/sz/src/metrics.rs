//! Distortion metrics for lossy-reconstructed data (Z-checker-style).
//!
//! The paper evaluates reconstruction quality with PSNR (peak signal-to-noise
//! ratio), defined over the value range `R` and the mean squared error:
//! `PSNR = 20·log10(R) − 10·log10(MSE)`. PSNR > 50 dB is reported as visually
//! indistinguishable (Fig 15).

use crate::error::SzError;
use crate::ndarray::Dataset;
use crate::value::ScalarValue;

/// Full distortion report comparing an original dataset with its lossy
/// reconstruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityReport {
    /// Peak signal-to-noise ratio in dB (infinite for exact reconstruction).
    pub psnr: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Maximum absolute pointwise error.
    pub max_abs_error: f64,
    /// Mean absolute pointwise error.
    pub mean_abs_error: f64,
    /// Value range of the original data.
    pub value_range: f64,
    /// Pearson correlation between original and reconstructed values.
    pub correlation: f64,
}

impl QualityReport {
    /// Whether the reconstruction satisfies a pointwise absolute bound.
    pub fn within_bound(&self, eb: f64) -> bool {
        self.max_abs_error <= eb * (1.0 + 1e-9)
    }
}

/// Compares `original` against `reconstructed`.
///
/// ```
/// use ocelot_sz::{metrics, Dataset};
///
/// # fn main() -> Result<(), ocelot_sz::SzError> {
/// let a = Dataset::from_fn(vec![100], |i| i[0] as f32 * 0.01);
/// let b = Dataset::from_fn(vec![100], |i| i[0] as f32 * 0.01 + 0.001);
/// let report = metrics::compare(&a, &b)?;
/// assert!(report.within_bound(0.0011));
/// assert!(report.psnr > 50.0);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
/// Returns [`SzError::InvalidShape`] if the shapes differ.
pub fn compare<T: ScalarValue>(original: &Dataset<T>, reconstructed: &Dataset<T>) -> Result<QualityReport, SzError> {
    if original.dims() != reconstructed.dims() {
        return Err(SzError::InvalidShape(format!(
            "shape mismatch: {:?} vs {:?}",
            original.dims(),
            reconstructed.dims()
        )));
    }
    let n = original.len() as f64;
    let mut sq_sum = 0.0f64;
    let mut abs_sum = 0.0f64;
    let mut max_abs = 0.0f64;
    let mut sum_a = 0.0f64;
    let mut sum_b = 0.0f64;
    let mut sum_ab = 0.0f64;
    let mut sum_a2 = 0.0f64;
    let mut sum_b2 = 0.0f64;
    for (&a, &b) in original.values().iter().zip(reconstructed.values()) {
        let (x, y) = (a.to_f64(), b.to_f64());
        let d = x - y;
        sq_sum += d * d;
        abs_sum += d.abs();
        if d.abs() > max_abs {
            max_abs = d.abs();
        }
        sum_a += x;
        sum_b += y;
        sum_ab += x * y;
        sum_a2 += x * x;
        sum_b2 += y * y;
    }
    let mse = sq_sum / n;
    let rmse = mse.sqrt();
    let range = original.value_range();
    let psnr = if mse == 0.0 {
        f64::INFINITY
    } else if range > 0.0 {
        20.0 * range.log10() - 10.0 * mse.log10()
    } else {
        -10.0 * mse.log10()
    };
    let cov = sum_ab / n - (sum_a / n) * (sum_b / n);
    let var_a = (sum_a2 / n - (sum_a / n).powi(2)).max(0.0);
    let var_b = (sum_b2 / n - (sum_b / n).powi(2)).max(0.0);
    let correlation = if var_a > 0.0 && var_b > 0.0 { cov / (var_a.sqrt() * var_b.sqrt()) } else { 1.0 };
    Ok(QualityReport {
        psnr,
        rmse,
        max_abs_error: max_abs,
        mean_abs_error: abs_sum / n,
        value_range: range,
        correlation,
    })
}

/// PSNR alone (convenience wrapper over [`compare`]).
///
/// # Errors
/// Returns [`SzError::InvalidShape`] if the shapes differ.
pub fn psnr<T: ScalarValue>(original: &Dataset<T>, reconstructed: &Dataset<T>) -> Result<f64, SzError> {
    Ok(compare(original, reconstructed)?.psnr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_data_has_infinite_psnr() {
        let d = Dataset::from_fn(vec![32], |i| i[0] as f32 * 0.1);
        let r = compare(&d, &d).unwrap();
        assert!(r.psnr.is_infinite());
        assert_eq!(r.rmse, 0.0);
        assert_eq!(r.max_abs_error, 0.0);
        assert!((r.correlation - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_psnr_value() {
        // Range 1.0, constant error 0.01 → MSE = 1e-4 → PSNR = 40 dB.
        let a = Dataset::from_fn(vec![100], |i| i[0] as f64 / 99.0);
        let b = Dataset::from_fn(vec![100], |i| i[0] as f64 / 99.0 + 0.01);
        let r = compare(&a, &b).unwrap();
        assert!((r.psnr - 40.0).abs() < 1e-9, "psnr={}", r.psnr);
        assert!((r.rmse - 0.01).abs() < 1e-12);
    }

    #[test]
    fn max_error_is_pointwise_max() {
        let a = Dataset::new(vec![3], vec![0.0f32, 0.0, 0.0]).unwrap();
        let b = Dataset::new(vec![3], vec![0.1f32, -0.3, 0.2]).unwrap();
        let r = compare(&a, &b).unwrap();
        assert!((r.max_abs_error - 0.3).abs() < 1e-6);
        assert!(!r.within_bound(0.2));
        assert!(r.within_bound(0.31));
    }

    #[test]
    fn shape_mismatch_errors() {
        let a = Dataset::<f32>::constant(vec![4], 0.0).unwrap();
        let b = Dataset::<f32>::constant(vec![2, 2], 0.0).unwrap();
        assert!(compare(&a, &b).is_err());
    }

    #[test]
    fn anticorrelated_data() {
        let a = Dataset::from_fn(vec![50], |i| i[0] as f64);
        let b = Dataset::from_fn(vec![50], |i| -(i[0] as f64));
        let r = compare(&a, &b).unwrap();
        assert!((r.correlation + 1.0).abs() < 1e-9);
    }
}
