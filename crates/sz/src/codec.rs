//! Unified codec interface: one trait and one configuration enum covering
//! both compressor families, so planners and quality predictors can rank and
//! select codecs without per-codec branches.
//!
//! The prediction pipeline historically took a [`LossyConfig`] while the
//! transform codec took a bare `abs_eb: f64`. [`CodecConfig`] folds both
//! into a single value, and [`Codec`] gives `SzCodec` and `ZfpCodec` the
//! same four entry points: `compress`, `decompress`, `name`, and
//! `estimate_ratio_sampled`.
//!
//! ```
//! use ocelot_sz::codec::{Codec, CodecConfig, SzCodec, ZfpCodec};
//! use ocelot_sz::{Dataset, LossyConfig};
//!
//! # fn main() -> Result<(), ocelot_sz::SzError> {
//! let data = Dataset::from_fn(vec![16, 16], |i| (i[0] as f32 * 0.3).sin() + i[1] as f32 * 0.1);
//! for config in [
//!     CodecConfig::Sz(LossyConfig::builder().abs(1e-3).threads(2).build()?),
//!     CodecConfig::zfp_abs(1e-3),
//! ] {
//!     let outcome = config.codec().compress(&data, &config)?;
//!     let restored = config.codec().decompress::<f32>(&outcome.blob)?;
//!     for (a, b) in data.values().iter().zip(restored.values()) {
//!         assert!((a - b).abs() <= 1e-3);
//!     }
//! }
//! # Ok(())
//! # }
//! ```

use crate::config::{ErrorBound, LossyConfig};
use crate::error::SzError;
use crate::format::{CodecFamily, CompressedBlob};
use crate::ndarray::Dataset;
use crate::pipeline::{self, CompressionOutcome};
use crate::sample;
use crate::value::ScalarValue;
use crate::zfp;

/// Configuration of the transform (ZFP-style) codec — the former bare
/// `abs_eb: f64` argument, promoted to a struct so both codec families
/// share the [`ErrorBound`] and parallelism vocabulary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZfpConfig {
    /// Pointwise error bound (relative bounds resolve against the dataset).
    pub error_bound: ErrorBound,
    /// Worker threads for chunk-parallel compression.
    pub threads: usize,
    /// Target points per chunk (`None` derives it from `threads`).
    pub chunk_points: Option<usize>,
}

impl ZfpConfig {
    /// Absolute-bound preset.
    pub fn abs(abs_eb: f64) -> Self {
        ZfpConfig { error_bound: ErrorBound::Abs(abs_eb), threads: 1, chunk_points: None }
    }

    /// Value-range-relative-bound preset.
    pub fn rel(rel_eb: f64) -> Self {
        ZfpConfig { error_bound: ErrorBound::Rel(rel_eb), ..Self::abs(0.0) }
    }

    /// Replaces the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`SzError::InvalidConfig`] for a non-positive bound or a zero
    /// thread count.
    pub fn validate(&self) -> Result<(), SzError> {
        self.error_bound.validate()?;
        if self.threads == 0 {
            return Err(SzError::InvalidConfig("thread count must be at least 1".into()));
        }
        Ok(())
    }
}

/// Codec-agnostic configuration: which compressor family to run and its
/// parameters. Callers that hold a `CodecConfig` never branch on the
/// variant — [`CodecConfig::codec`] hands back the matching codec object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CodecConfig {
    /// Prediction-based pipeline (SZ model).
    Sz(LossyConfig),
    /// Transform-based codec (ZFP model).
    Zfp(ZfpConfig),
}

impl CodecConfig {
    /// Transform codec at an absolute bound (the old `zfp::compress` call
    /// shape).
    pub fn zfp_abs(abs_eb: f64) -> Self {
        CodecConfig::Zfp(ZfpConfig::abs(abs_eb))
    }

    /// Short codec name (`"sz"` / `"zfp"`).
    pub fn name(&self) -> &'static str {
        self.codec().name()
    }

    /// The configured error bound.
    pub fn error_bound(&self) -> ErrorBound {
        match self {
            CodecConfig::Sz(c) => c.error_bound,
            CodecConfig::Zfp(c) => c.error_bound,
        }
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        match self {
            CodecConfig::Sz(c) => c.threads,
            CodecConfig::Zfp(c) => c.threads,
        }
    }

    /// Replaces the worker-thread count, whichever codec is selected.
    pub fn with_threads(self, threads: usize) -> Self {
        match self {
            CodecConfig::Sz(c) => CodecConfig::Sz(c.with_threads(threads)),
            CodecConfig::Zfp(c) => CodecConfig::Zfp(c.with_threads(threads)),
        }
    }

    /// Validates the wrapped configuration.
    ///
    /// # Errors
    /// Propagates the wrapped config's validation error.
    pub fn validate(&self) -> Result<(), SzError> {
        match self {
            CodecConfig::Sz(c) => c.validate(),
            CodecConfig::Zfp(c) => c.validate(),
        }
    }

    /// The codec this configuration drives.
    pub fn codec(&self) -> AnyCodec {
        match self {
            CodecConfig::Sz(_) => AnyCodec::Sz(SzCodec),
            CodecConfig::Zfp(_) => AnyCodec::Zfp(ZfpCodec),
        }
    }
}

/// A compressor family usable through one interface.
///
/// Implementations are zero-sized handles; configuration travels in the
/// [`CodecConfig`] passed to each call. `compress` returns the full
/// [`CompressionOutcome`] (the blob plus statistics — stats are always
/// collected).
pub trait Codec {
    /// Short stable name (`"sz"` / `"zfp"`), used as a categorical feature
    /// and in reports.
    fn name(&self) -> &'static str;

    /// Compresses a dataset under this codec.
    ///
    /// # Errors
    /// Returns [`SzError::InvalidConfig`] if `config` wraps the other
    /// codec's parameters or fails validation, and shape errors as each
    /// codec documents.
    fn compress<T: ScalarValue>(&self, data: &Dataset<T>, config: &CodecConfig) -> Result<CompressionOutcome, SzError>;

    /// Decompresses a blob produced by this codec on a single thread.
    ///
    /// # Errors
    /// Returns [`SzError::InvalidConfig`] if the blob was produced by a
    /// different codec family, plus the usual stream errors.
    fn decompress<T: ScalarValue>(&self, blob: &CompressedBlob) -> Result<Dataset<T>, SzError> {
        self.decompress_with_threads(blob, 1)
    }

    /// Decompresses a blob, decoding chunks on up to `threads` workers.
    ///
    /// # Errors
    /// Same as [`Codec::decompress`].
    fn decompress_with_threads<T: ScalarValue>(
        &self,
        blob: &CompressedBlob,
        threads: usize,
    ) -> Result<Dataset<T>, SzError>;

    /// Cheaply estimates the compression ratio by really encoding a sampled
    /// subset (every `stride`-th point for the prediction codec, every
    /// `stride`-th 4^d block for the transform codec).
    ///
    /// # Errors
    /// Same conditions as [`Codec::compress`].
    fn estimate_ratio_sampled<T: ScalarValue>(
        &self,
        data: &Dataset<T>,
        config: &CodecConfig,
        stride: usize,
    ) -> Result<f64, SzError>;
}

/// The prediction-based (SZ-model) codec.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SzCodec;

/// The transform-based (ZFP-model) codec.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZfpCodec;

fn expect_family(blob: &CompressedBlob, family: CodecFamily, name: &str) -> Result<(), SzError> {
    let header = blob.header()?;
    if header.family != family {
        return Err(SzError::InvalidConfig(format!(
            "blob holds {} data; decode it with the matching codec",
            if header.family == CodecFamily::Prediction { "prediction-codec (sz)" } else { "transform-codec (zfp)" }
        )));
    }
    let _ = name;
    Ok(())
}

impl Codec for SzCodec {
    fn name(&self) -> &'static str {
        "sz"
    }

    fn compress<T: ScalarValue>(&self, data: &Dataset<T>, config: &CodecConfig) -> Result<CompressionOutcome, SzError> {
        match config {
            CodecConfig::Sz(cfg) => pipeline::compress(data, cfg),
            CodecConfig::Zfp(_) => Err(SzError::InvalidConfig("SzCodec needs CodecConfig::Sz".into())),
        }
    }

    fn decompress_with_threads<T: ScalarValue>(
        &self,
        blob: &CompressedBlob,
        threads: usize,
    ) -> Result<Dataset<T>, SzError> {
        expect_family(blob, CodecFamily::Prediction, self.name())?;
        pipeline::decompress_with_threads(blob, threads)
    }

    fn estimate_ratio_sampled<T: ScalarValue>(
        &self,
        data: &Dataset<T>,
        config: &CodecConfig,
        stride: usize,
    ) -> Result<f64, SzError> {
        let CodecConfig::Sz(cfg) = config else {
            return Err(SzError::InvalidConfig("SzCodec needs CodecConfig::Sz".into()));
        };
        cfg.validate()?;
        // Resolve a relative bound against the *full* dataset so the sample
        // is compressed at the bound the real run would use, then encode the
        // sampled stream serially and take the payload-only ratio (framing
        // would swamp a small sample).
        let abs_eb = cfg.error_bound.resolve(data);
        let sampled = sample::sample_stride(data, stride.max(1));
        let serial = cfg.with_error_bound(ErrorBound::Abs(abs_eb)).with_threads(1).with_chunk_points(None);
        let outcome = pipeline::compress(&sampled, &serial)?;
        let payload = (outcome.sections.side_data + outcome.sections.unpredictable + outcome.sections.codes).max(1);
        Ok(sampled.nbytes() as f64 / payload as f64)
    }
}

impl Codec for ZfpCodec {
    fn name(&self) -> &'static str {
        "zfp"
    }

    fn compress<T: ScalarValue>(&self, data: &Dataset<T>, config: &CodecConfig) -> Result<CompressionOutcome, SzError> {
        match config {
            CodecConfig::Zfp(cfg) => {
                cfg.validate()?;
                zfp::compress_impl(data, cfg.error_bound.resolve(data), cfg.threads, cfg.chunk_points)
            }
            CodecConfig::Sz(_) => Err(SzError::InvalidConfig("ZfpCodec needs CodecConfig::Zfp".into())),
        }
    }

    fn decompress_with_threads<T: ScalarValue>(
        &self,
        blob: &CompressedBlob,
        threads: usize,
    ) -> Result<Dataset<T>, SzError> {
        expect_family(blob, CodecFamily::Transform, self.name())?;
        pipeline::decompress_with_threads(blob, threads)
    }

    fn estimate_ratio_sampled<T: ScalarValue>(
        &self,
        data: &Dataset<T>,
        config: &CodecConfig,
        stride: usize,
    ) -> Result<f64, SzError> {
        let CodecConfig::Zfp(cfg) = config else {
            return Err(SzError::InvalidConfig("ZfpCodec needs CodecConfig::Zfp".into()));
        };
        cfg.validate()?;
        zfp::estimate_ratio_sampled(data, cfg.error_bound.resolve(data), stride.max(1))
    }
}

/// Enum dispatch over the two codecs, for callers that choose a codec at
/// run time (planners, CLIs) without generics or trait objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnyCodec {
    /// Prediction-based pipeline.
    Sz(SzCodec),
    /// Transform-based codec.
    Zfp(ZfpCodec),
}

/// Selects the codec that produced a blob, from its header.
///
/// # Errors
/// Propagates header parse errors.
pub fn codec_for_blob(blob: &CompressedBlob) -> Result<AnyCodec, SzError> {
    Ok(match blob.header()?.family {
        CodecFamily::Prediction => AnyCodec::Sz(SzCodec),
        CodecFamily::Transform => AnyCodec::Zfp(ZfpCodec),
    })
}

impl Codec for AnyCodec {
    fn name(&self) -> &'static str {
        match self {
            AnyCodec::Sz(c) => c.name(),
            AnyCodec::Zfp(c) => c.name(),
        }
    }

    fn compress<T: ScalarValue>(&self, data: &Dataset<T>, config: &CodecConfig) -> Result<CompressionOutcome, SzError> {
        match self {
            AnyCodec::Sz(c) => c.compress(data, config),
            AnyCodec::Zfp(c) => c.compress(data, config),
        }
    }

    fn decompress_with_threads<T: ScalarValue>(
        &self,
        blob: &CompressedBlob,
        threads: usize,
    ) -> Result<Dataset<T>, SzError> {
        match self {
            AnyCodec::Sz(c) => c.decompress_with_threads(blob, threads),
            AnyCodec::Zfp(c) => c.decompress_with_threads(blob, threads),
        }
    }

    fn estimate_ratio_sampled<T: ScalarValue>(
        &self,
        data: &Dataset<T>,
        config: &CodecConfig,
        stride: usize,
    ) -> Result<f64, SzError> {
        match self {
            AnyCodec::Sz(c) => c.estimate_ratio_sampled(data, config, stride),
            AnyCodec::Zfp(c) => c.estimate_ratio_sampled(data, config, stride),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    fn field() -> Dataset<f32> {
        Dataset::from_fn(vec![24, 24], |i| ((i[0] as f32) * 0.2).sin() * 5.0 + (i[1] as f32) * 0.05)
    }

    fn configs() -> [CodecConfig; 2] {
        [CodecConfig::Sz(LossyConfig::sz3_abs(1e-3)), CodecConfig::zfp_abs(1e-3)]
    }

    #[test]
    fn both_codecs_round_trip_through_the_trait() {
        let data = field();
        for config in configs() {
            let codec = config.codec();
            let outcome = codec.compress(&data, &config).unwrap();
            let restored = codec.decompress::<f32>(&outcome.blob).unwrap();
            let report = metrics::compare(&data, &restored).unwrap();
            assert!(report.within_bound(1e-3 + 1e-9), "{}: max={}", codec.name(), report.max_abs_error);
        }
    }

    #[test]
    fn chunked_zfp_round_trips_in_parallel() {
        let data = field();
        let config = CodecConfig::Zfp(ZfpConfig::abs(1e-3).with_threads(4));
        let outcome = config.codec().compress(&data, &config).unwrap();
        assert!(outcome.chunks > 1);
        let restored = config.codec().decompress_with_threads::<f32>(&outcome.blob, 4).unwrap();
        assert!(metrics::compare(&data, &restored).unwrap().within_bound(1e-3 + 1e-9));
    }

    #[test]
    fn mismatched_config_is_rejected() {
        let data = field();
        let sz_cfg = CodecConfig::Sz(LossyConfig::sz3_abs(1e-3));
        let zfp_cfg = CodecConfig::zfp_abs(1e-3);
        assert!(matches!(ZfpCodec.compress(&data, &sz_cfg), Err(SzError::InvalidConfig(_))));
        assert!(matches!(SzCodec.compress(&data, &zfp_cfg), Err(SzError::InvalidConfig(_))));
        assert!(SzCodec.estimate_ratio_sampled(&data, &zfp_cfg, 10).is_err());
        assert!(ZfpCodec.estimate_ratio_sampled(&data, &sz_cfg, 10).is_err());
    }

    #[test]
    fn decompressing_with_the_wrong_codec_is_rejected() {
        let data = field();
        let sz_blob = SzCodec.compress(&data, &CodecConfig::Sz(LossyConfig::sz3_abs(1e-3))).unwrap().blob;
        assert!(matches!(ZfpCodec.decompress::<f32>(&sz_blob), Err(SzError::InvalidConfig(_))));
        assert!(SzCodec.decompress::<f32>(&sz_blob).is_ok());
        assert_eq!(codec_for_blob(&sz_blob).unwrap().name(), "sz");
        let zfp_blob = ZfpCodec.compress(&data, &CodecConfig::zfp_abs(1e-3)).unwrap().blob;
        assert_eq!(codec_for_blob(&zfp_blob).unwrap().name(), "zfp");
    }

    #[test]
    fn estimates_are_positive_and_track_the_bound() {
        let data = Dataset::from_fn(vec![40, 40], |i| ((i[0] + i[1]) as f32 * 0.05).sin());
        for (loose, tight) in [
            (CodecConfig::Sz(LossyConfig::sz3_abs(1e-2)), CodecConfig::Sz(LossyConfig::sz3_abs(1e-5))),
            (CodecConfig::zfp_abs(1e-2), CodecConfig::zfp_abs(1e-5)),
        ] {
            let rl = loose.codec().estimate_ratio_sampled(&data, &loose, 5).unwrap();
            let rt = tight.codec().estimate_ratio_sampled(&data, &tight, 5).unwrap();
            assert!(rl > 0.0 && rt > 0.0);
            assert!(rl > rt, "{}: loose {rl} <= tight {rt}", loose.name());
        }
    }

    #[test]
    fn config_accessors_are_uniform() {
        let cfg = CodecConfig::Sz(LossyConfig::sz3(1e-3)).with_threads(6);
        assert_eq!(cfg.threads(), 6);
        assert_eq!(cfg.name(), "sz");
        let z = CodecConfig::zfp_abs(1e-4).with_threads(3);
        assert_eq!(z.threads(), 3);
        assert_eq!(z.name(), "zfp");
        assert!(z.validate().is_ok());
        assert_eq!(z.error_bound(), ErrorBound::Abs(1e-4));
        assert!(CodecConfig::zfp_abs(0.0).validate().is_err());
    }
}
