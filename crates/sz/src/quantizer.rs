//! Linear-scale quantizer with error-bound guarantee.
//!
//! The SZ model quantizes the *prediction error* `d = value − predicted` into
//! integer bins of width `2·eb`: `bin = round(d / (2·eb))`. The reconstructed
//! value `predicted + bin·2·eb` is then within `eb` of the original. Bins are
//! shifted by the quantizer radius into non-negative codes for entropy
//! coding; code `0` is reserved for *unpredictable* values, which are stored
//! verbatim in a side channel.

use crate::value::ScalarValue;

/// Outcome of quantizing one value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantized<T> {
    /// Entropy-coder symbol: `0` = unpredictable, otherwise `radius + bin`.
    pub code: u32,
    /// The value the decompressor will reconstruct (bit-exact parity).
    pub reconstructed: T,
}

/// Linear-scale quantizer (see module docs).
#[derive(Debug, Clone)]
pub struct LinearQuantizer {
    eb: f64,
    two_eb: f64,
    radius: u32,
}

impl LinearQuantizer {
    /// Creates a quantizer for an absolute error bound and code radius.
    ///
    /// # Panics
    /// Panics if `eb` is not positive/finite or `radius < 2` (configurations
    /// are validated before reaching this layer; this is a defensive check).
    pub fn new(eb: f64, radius: u32) -> Self {
        assert!(eb.is_finite() && eb > 0.0, "error bound must be positive, got {eb}");
        assert!(radius >= 2, "radius must be >= 2, got {radius}");
        LinearQuantizer { eb, two_eb: 2.0 * eb, radius }
    }

    /// The absolute error bound.
    pub fn error_bound(&self) -> f64 {
        self.eb
    }

    /// The code radius.
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// Quantizes `value` against `predicted`.
    ///
    /// If the bin fits within the radius **and** the reconstruction really is
    /// within the bound (guarding against floating-point edge cases at huge
    /// magnitudes), returns the code and the reconstruction; otherwise marks
    /// the value unpredictable (`code == 0`, reconstruction == exact value).
    #[inline]
    pub fn quantize<T: ScalarValue>(&self, value: T, predicted: f64) -> Quantized<T> {
        let v = value.to_f64();
        let diff = v - predicted;
        let bin = (diff / self.two_eb).round();
        if bin.abs() < self.radius as f64 {
            let recon = predicted + bin * self.two_eb;
            // Reconstruction must satisfy the bound in T's precision: the
            // decompressor stores T, so the check narrows first.
            let recon_t = T::from_f64(recon);
            if (recon_t.to_f64() - v).abs() <= self.eb {
                let code = (self.radius as i64 + bin as i64) as u32;
                debug_assert!(code != 0);
                return Quantized { code, reconstructed: recon_t };
            }
        }
        Quantized { code: 0, reconstructed: value }
    }

    /// Recovers a value from a nonzero code and the prediction.
    ///
    /// # Panics
    /// Panics in debug builds if `code == 0` (unpredictable values are
    /// recovered from the side channel, not through this method).
    #[inline]
    pub fn recover<T: ScalarValue>(&self, code: u32, predicted: f64) -> T {
        debug_assert!(code != 0, "code 0 is the unpredictable marker");
        let bin = code as i64 - self.radius as i64;
        T::from_f64(predicted + bin as f64 * self.two_eb)
    }

    /// Number of distinct entropy-coder symbols (`2·radius`), including the
    /// unpredictable marker.
    pub fn symbol_count(&self) -> usize {
        (self.radius as usize) * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_respects_error_bound() {
        let q = LinearQuantizer::new(0.01, 1 << 15);
        for &(v, p) in &[(1.0f64, 0.97), (-3.5, -3.49), (0.0, 5.0e-3), (100.0, 99.999)] {
            let out = q.quantize(v, p);
            // The value may be flagged unpredictable under floating-point
            // edge cases, but reconstruction always honours the bound.
            assert!((out.reconstructed - v).abs() <= 0.01 + 1e-15, "v={v} p={p}");
        }
    }

    #[test]
    fn recover_matches_quantize() {
        let q = LinearQuantizer::new(1e-3, 512);
        let predicted = 2.34;
        let out = q.quantize(2.341f64, predicted);
        assert_ne!(out.code, 0);
        let rec: f64 = q.recover(out.code, predicted);
        assert_eq!(rec, out.reconstructed);
    }

    #[test]
    fn far_value_is_unpredictable() {
        let q = LinearQuantizer::new(1e-6, 4);
        let out = q.quantize(1.0f32, 0.0);
        assert_eq!(out.code, 0);
        assert_eq!(out.reconstructed, 1.0);
    }

    #[test]
    fn exact_prediction_gets_center_code() {
        let q = LinearQuantizer::new(0.5, 16);
        let out = q.quantize(3.0f64, 3.0);
        assert_eq!(out.code, 16); // radius + 0
        assert_eq!(out.reconstructed, 3.0);
    }

    #[test]
    fn f32_narrowing_is_checked() {
        // A reconstruction that is within the bound in f64 but rounds outside
        // it in f32 must be flagged unpredictable rather than violate the
        // bound after narrowing.
        let eb = 1e-9;
        let q = LinearQuantizer::new(eb, 1 << 15);
        let v: f32 = 123456.7;
        let out = q.quantize(v, v as f64 + 0.5e-9);
        assert!((out.reconstructed - v).abs() as f64 <= eb || out.code == 0);
    }

    #[test]
    fn symbol_count_is_twice_radius() {
        assert_eq!(LinearQuantizer::new(1.0, 8).symbol_count(), 16);
    }

    #[test]
    #[should_panic(expected = "error bound must be positive")]
    fn zero_eb_panics() {
        LinearQuantizer::new(0.0, 8);
    }
}
