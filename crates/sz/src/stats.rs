//! Statistical features of datasets and quantization-bin streams.
//!
//! These implement the paper's data-based features (byte-level entropy,
//! value-range statistics, mean Lorenzo error) and compressor-based features
//! (`p0`, `P0`, quantization entropy, and the run-length estimator `R_rle`)
//! from §VI.

use std::collections::BTreeMap;

use crate::encode::huffman;
use crate::ndarray::Dataset;
use crate::value::ScalarValue;

/// Byte-level Shannon entropy of the little-endian representation, in bits
/// per byte (`0 ≤ H ≤ 8`). The paper uses this as the "chaos level" feature:
/// higher entropy data are harder (slower, less compressible) to compress.
pub fn byte_entropy<T: ScalarValue>(data: &Dataset<T>) -> f64 {
    let mut counts = [0u64; 256];
    let mut buf = Vec::with_capacity(T::BYTES);
    for &v in data.values() {
        buf.clear();
        v.write_le(&mut buf);
        for &b in &buf {
            counts[b as usize] += 1;
        }
    }
    shannon_entropy_counts(&counts)
}

/// Shannon entropy (bits/symbol) of a count table.
fn shannon_entropy_counts(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total_f = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total_f;
            -p * p.log2()
        })
        .sum()
}

/// Shannon entropy (bits/symbol) of an arbitrary symbol stream. Summation
/// runs in sorted-symbol order so the result is bit-reproducible across runs
/// (a `HashMap` walk would reorder the float sum and jitter the last ulp).
pub fn symbol_entropy(symbols: &[u32]) -> f64 {
    let mut counts: BTreeMap<u32, u64> = BTreeMap::new();
    for &s in symbols {
        *counts.entry(s).or_insert(0) += 1;
    }
    let total = symbols.len() as f64;
    if total == 0.0 {
        return 0.0;
    }
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.log2()
        })
        .sum()
}

/// Basic value statistics (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueStats {
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// `max − min`.
    pub range: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

/// Computes [`ValueStats`] in one pass.
pub fn value_stats<T: ScalarValue>(data: &Dataset<T>) -> ValueStats {
    let (min, max) = data.min_max();
    let n = data.len() as f64;
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for &v in data.values() {
        let x = v.to_f64();
        sum += x;
        sum_sq += x * x;
    }
    let mean = sum / n;
    let var = (sum_sq / n - mean * mean).max(0.0);
    ValueStats { min: min.to_f64(), max: max.to_f64(), range: max.to_f64() - min.to_f64(), mean, std_dev: var.sqrt() }
}

/// Compressor-based features of a quantization-bin stream (paper §VI, Fig 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantBinStats {
    /// `p0`: fraction of bins equal to the zero-error bin.
    pub p0: f64,
    /// `P0`: share of the Huffman-encoded size taken by the zero bin.
    pub cap_p0: f64,
    /// Shannon entropy of the bin distribution (bits/bin).
    pub quant_entropy: f64,
    /// Run-length estimator `R_rle = 1 / ((1 − p0)·P0 + (1 − P0))`.
    pub r_rle: f64,
    /// Fraction of unpredictable points (code 0).
    pub unpredictable: f64,
}

/// Computes bin statistics from a code stream, where `zero_code` is the
/// symbol of the zero-error bin (quantizer radius) and `0` marks
/// unpredictable points.
pub fn quant_bin_stats(codes: &[u32], zero_code: u32) -> QuantBinStats {
    quant_bin_stats_from_hist(&code_histogram(codes), zero_code)
}

/// Sparse `(code, count)` histogram of a code stream, sorted by code. The
/// chunked pipeline aggregates these per chunk so job-wide statistics never
/// need the concatenated code stream.
pub(crate) fn code_histogram(codes: &[u32]) -> Vec<(u32, u64)> {
    huffman::freq_pairs(codes)
}

/// Merges a sorted sparse histogram into a sorted accumulator.
pub(crate) fn merge_histograms(acc: &mut Vec<(u32, u64)>, add: &[(u32, u64)]) {
    if add.is_empty() {
        return;
    }
    if acc.is_empty() {
        acc.extend_from_slice(add);
        return;
    }
    let mut merged = Vec::with_capacity(acc.len() + add.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < acc.len() && j < add.len() {
        match acc[i].0.cmp(&add[j].0) {
            std::cmp::Ordering::Less => {
                merged.push(acc[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                merged.push(add[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                merged.push((acc[i].0, acc[i].1 + add[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    merged.extend_from_slice(&acc[i..]);
    merged.extend_from_slice(&add[j..]);
    *acc = merged;
}

/// [`quant_bin_stats`] over a sorted sparse histogram instead of the code
/// stream itself.
///
/// Bit-reproducibility: counts, `freq·len` products, and their running sums
/// are exact integers well inside `f64`'s 2^53 mantissa, and every float sum
/// here runs in sorted-symbol order — exactly the order [`symbol_entropy`]
/// and `huffman::encoded_share` use — so the result matches the code-stream
/// path bit for bit.
pub(crate) fn quant_bin_stats_from_hist(hist: &[(u32, u64)], zero_code: u32) -> QuantBinStats {
    let total: u64 = hist.iter().map(|&(_, c)| c).sum();
    if total == 0 {
        return QuantBinStats { p0: 0.0, cap_p0: 0.0, quant_entropy: 0.0, r_rle: 1.0, unpredictable: 0.0 };
    }
    let n = total as f64;
    let count_of = |sym: u32| hist.binary_search_by_key(&sym, |&(s, _)| s).map_or(0, |i| hist[i].1);
    let p0 = count_of(zero_code) as f64 / n;
    let unpred = count_of(0) as f64 / n;
    let lengths = huffman::lengths_from_pairs(hist);
    let total_bits: f64 = hist.iter().zip(&lengths).map(|(&(_, f), &(_, l))| f as f64 * l as f64).sum();
    let cap_p0 = match hist.binary_search_by_key(&zero_code, |&(s, _)| s) {
        Ok(i) if total_bits > 0.0 => hist[i].1 as f64 * lengths[i].1 as f64 / total_bits,
        _ => 0.0,
    };
    let quant_entropy = hist
        .iter()
        .map(|&(_, c)| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum();
    let denom = (1.0 - p0) * cap_p0 + (1.0 - cap_p0);
    let r_rle = if denom > 1e-12 { 1.0 / denom } else { f64::INFINITY };
    QuantBinStats { p0, cap_p0, quant_entropy, r_rle, unpredictable: unpred }
}

/// The Jin et al. (ICDE'22) closed-form compression-ratio estimator
/// `CR ≈ 1 / (C1·(1 − p0)·P0 + (1 − P0))`, which the paper compares against
/// (Figs 5–6). `c1` is the ad-hoc application-specific tuning constant whose
/// sensitivity motivates Ocelot's learned model.
pub fn jin_ratio_estimate(stats: &QuantBinStats, c1: f64) -> f64 {
    let denom = c1 * (1.0 - stats.p0) * stats.cap_p0 + (1.0 - stats.cap_p0);
    if denom > 1e-12 {
        1.0 / denom
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_of_constant_bytes_is_zero() {
        let d = Dataset::<f32>::constant(vec![64], 0.0).unwrap();
        assert_eq!(byte_entropy(&d), 0.0);
    }

    #[test]
    fn entropy_of_uniform_bytes_is_eight() {
        // 256 f32 values whose byte representation cycles through all 256
        // byte values uniformly.
        let vals: Vec<f32> = (0..256u32)
            .map(|i| {
                f32::from_le_bytes([
                    i as u8,
                    (i as u8).wrapping_add(64),
                    (i as u8).wrapping_add(128),
                    (i as u8).wrapping_add(192),
                ])
            })
            .collect();
        let d = Dataset::new(vec![256], vals).unwrap();
        let h = byte_entropy(&d);
        assert!((h - 8.0).abs() < 1e-9, "h={h}");
    }

    #[test]
    fn symbol_entropy_two_equal_symbols_is_one_bit() {
        let h = symbol_entropy(&[1, 2, 1, 2, 1, 2, 1, 2]);
        assert!((h - 1.0).abs() < 1e-12);
    }

    #[test]
    fn value_stats_simple() {
        let d = Dataset::new(vec![4], vec![1.0f64, 2.0, 3.0, 4.0]).unwrap();
        let s = value_stats(&d);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.range, 3.0);
        assert_eq!(s.mean, 2.5);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn quant_stats_all_zero_bins() {
        let zero = 512u32;
        let codes = vec![zero; 100];
        let s = quant_bin_stats(&codes, zero);
        assert_eq!(s.p0, 1.0);
        assert_eq!(s.quant_entropy, 0.0);
        assert_eq!(s.unpredictable, 0.0);
        // All-zero stream: P0 = 1, denominator = (1-1)*1 + 0 = 0 → infinite
        // estimated ratio, matching "perfectly predictable data".
        assert!(s.r_rle.is_infinite());
    }

    #[test]
    fn quant_stats_mixed_stream() {
        let zero = 512u32;
        let mut codes = vec![zero; 90];
        codes.extend([511, 513, 0, 0, 511, 513, 511, 513, 511, 513]);
        let s = quant_bin_stats(&codes, zero);
        assert!((s.p0 - 0.9).abs() < 1e-12);
        assert!((s.unpredictable - 0.02).abs() < 1e-12);
        assert!(s.quant_entropy > 0.0);
        assert!(s.r_rle.is_finite() && s.r_rle > 1.0);
    }

    #[test]
    fn jin_estimator_reduces_to_rrle_at_c1_one() {
        let zero = 100u32;
        let codes: Vec<u32> = (0..1000).map(|i| if i % 10 == 0 { 99 } else { zero }).collect();
        let s = quant_bin_stats(&codes, zero);
        let jin = jin_ratio_estimate(&s, 1.0);
        assert!((jin - s.r_rle).abs() < 1e-9);
        // Larger C1 penalizes non-zero bins more → lower estimated ratio.
        assert!(jin_ratio_estimate(&s, 2.0) < jin);
    }

    #[test]
    fn empty_codes_are_handled() {
        let s = quant_bin_stats(&[], 5);
        assert_eq!(s.p0, 0.0);
        assert_eq!(s.r_rle, 1.0);
    }
}
