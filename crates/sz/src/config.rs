//! Compressor configuration: error bounds, predictor selection, and lossless
//! backend selection ("config-based features" in the paper's terminology).

use crate::error::SzError;
use crate::ndarray::Dataset;
use crate::value::ScalarValue;
use serde::{Deserialize, Serialize};

/// User-specified error bound for lossy compression.
///
/// The compressor guarantees `|original − reconstructed| ≤ eb` for every
/// point, where `eb` is the *absolute* bound after resolving a relative bound
/// against the dataset's value range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ErrorBound {
    /// Absolute pointwise bound.
    Abs(f64),
    /// Bound relative to the dataset value range: `eb = rel × (max − min)`.
    ///
    /// This is the mode the paper's experiments use (error bounds 1e-6..1e-1
    /// are value-range-relative).
    Rel(f64),
}

impl ErrorBound {
    /// Resolves the bound to an absolute value for a given dataset.
    ///
    /// A relative bound on a constant dataset (range 0) resolves to a tiny
    /// positive epsilon so that quantization remains well-defined.
    pub fn resolve<T: ScalarValue>(&self, data: &Dataset<T>) -> f64 {
        match *self {
            ErrorBound::Abs(eb) => eb,
            ErrorBound::Rel(rel) => {
                let range = data.value_range();
                if range > 0.0 {
                    rel * range
                } else {
                    f64::MIN_POSITIVE.max(rel * 1e-30)
                }
            }
        }
    }

    /// The raw numeric bound (absolute value or relative fraction).
    pub fn raw(&self) -> f64 {
        match *self {
            ErrorBound::Abs(v) | ErrorBound::Rel(v) => v,
        }
    }

    /// Validates that the bound is positive and finite.
    pub fn validate(&self) -> Result<(), SzError> {
        let v = self.raw();
        if !(v.is_finite() && v > 0.0) {
            return Err(SzError::InvalidConfig(format!("error bound must be positive and finite, got {v}")));
        }
        Ok(())
    }
}

/// Decorrelation predictor used by the compression pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredictorKind {
    /// Classic first-order Lorenzo predictor (1-/2-/3-D).
    Lorenzo,
    /// Second-order Lorenzo (deeper stencil; captures gradients exactly).
    Lorenzo2,
    /// SZ2-style hybrid: per-block choice between Lorenzo and linear
    /// regression fitted over each block.
    Regression,
    /// SZ3-style multilevel spline interpolation with linear basis.
    InterpLinear,
    /// SZ3-style multilevel spline interpolation with cubic basis
    /// (the paper's default "SZ-interp" algorithm).
    InterpCubic,
}

impl PredictorKind {
    /// All predictors, in the order used for profiling sweeps.
    pub const ALL: [PredictorKind; 5] = [
        PredictorKind::Lorenzo,
        PredictorKind::Lorenzo2,
        PredictorKind::Regression,
        PredictorKind::InterpLinear,
        PredictorKind::InterpCubic,
    ];

    /// Stable short name (used as the discrete "compressor type" feature fed
    /// to the quality-prediction model).
    pub fn name(&self) -> &'static str {
        match self {
            PredictorKind::Lorenzo => "lorenzo",
            PredictorKind::Lorenzo2 => "lorenzo2",
            PredictorKind::Regression => "regression",
            PredictorKind::InterpLinear => "interp-linear",
            PredictorKind::InterpCubic => "interp-cubic",
        }
    }

    /// Numeric id used as a categorical model feature.
    pub fn id(&self) -> u8 {
        match self {
            PredictorKind::Lorenzo => 0,
            PredictorKind::Lorenzo2 => 4,
            PredictorKind::Regression => 1,
            PredictorKind::InterpLinear => 2,
            PredictorKind::InterpCubic => 3,
        }
    }
}

impl std::fmt::Display for PredictorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Lossless entropy/dictionary stage applied to quantization bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LosslessBackend {
    /// Canonical Huffman coding only.
    Huffman,
    /// Huffman followed by an LZ77 dictionary pass (SZ3's default shape:
    /// Huffman + Zstd; our LZ stage plays Zstd's role).
    HuffmanLz,
    /// Zero-run-length coding followed by Huffman (effective at large error
    /// bounds where bins are overwhelmingly zero).
    RleHuffman,
}

impl LosslessBackend {
    /// Stable short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            LosslessBackend::Huffman => "huffman",
            LosslessBackend::HuffmanLz => "huffman+lz",
            LosslessBackend::RleHuffman => "rle+huffman",
        }
    }
}

impl std::fmt::Display for LosslessBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Complete configuration of a prediction-based compression pipeline.
///
/// Construct with [`LossyConfig::builder`], one of the presets
/// ([`LossyConfig::sz3`], [`LossyConfig::sz2`], [`LossyConfig::lorenzo`]),
/// or customize fields via the builder-style `with_*` methods.
///
/// ```
/// use ocelot_sz::config::{LosslessBackend, LossyConfig, PredictorKind};
///
/// let cfg = LossyConfig::builder()
///     .abs(1e-3)
///     .predictor(PredictorKind::Lorenzo2)
///     .backend(LosslessBackend::RleHuffman)
///     .threads(4)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.predictor.name(), "lorenzo2");
/// assert_eq!(cfg.threads, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossyConfig {
    /// Pointwise error bound.
    pub error_bound: ErrorBound,
    /// Decorrelation predictor.
    pub predictor: PredictorKind,
    /// Lossless backend applied to quantization bins.
    pub backend: LosslessBackend,
    /// Quantizer radius: bins span `[-radius, radius)`; values outside are
    /// stored verbatim. SZ's default corresponds to 2^15.
    pub quant_radius: u32,
    /// Worker threads for chunk-parallel compression. `1` (the default)
    /// compresses the dataset as a single chunk, reproducing the serial
    /// pipeline's stream.
    pub threads: usize,
    /// Target points per chunk. `None` derives the chunk size from
    /// `threads` (two slabs per worker); an explicit value pins the chunk
    /// layout — and therefore the output bytes — independent of `threads`.
    pub chunk_points: Option<usize>,
}

impl LossyConfig {
    /// SZ3 preset (cubic interpolation + Huffman + LZ) with a relative bound.
    pub fn sz3(rel_eb: f64) -> Self {
        LossyConfig {
            error_bound: ErrorBound::Rel(rel_eb),
            predictor: PredictorKind::InterpCubic,
            backend: LosslessBackend::HuffmanLz,
            quant_radius: 1 << 15,
            threads: 1,
            chunk_points: None,
        }
    }

    /// SZ3 preset with an absolute bound.
    pub fn sz3_abs(abs_eb: f64) -> Self {
        LossyConfig { error_bound: ErrorBound::Abs(abs_eb), ..Self::sz3(0.0) }
    }

    /// SZ2 preset (block regression/Lorenzo hybrid + Huffman + LZ).
    pub fn sz2(rel_eb: f64) -> Self {
        LossyConfig { error_bound: ErrorBound::Rel(rel_eb), predictor: PredictorKind::Regression, ..Self::sz3(0.0) }
    }

    /// Pure Lorenzo preset (SZ1.4-style pipeline).
    pub fn lorenzo(rel_eb: f64) -> Self {
        LossyConfig {
            error_bound: ErrorBound::Rel(rel_eb),
            predictor: PredictorKind::Lorenzo,
            backend: LosslessBackend::Huffman,
            ..Self::sz3(0.0)
        }
    }

    /// Starts a builder with the SZ3 pipeline shape and no error bound set.
    pub fn builder() -> LossyConfigBuilder {
        LossyConfigBuilder { config: Self::sz3(0.0), bound_set: false }
    }

    /// Replaces the error bound.
    pub fn with_error_bound(mut self, eb: ErrorBound) -> Self {
        self.error_bound = eb;
        self
    }

    /// Replaces the predictor.
    pub fn with_predictor(mut self, p: PredictorKind) -> Self {
        self.predictor = p;
        self
    }

    /// Replaces the lossless backend.
    pub fn with_backend(mut self, b: LosslessBackend) -> Self {
        self.backend = b;
        self
    }

    /// Replaces the quantizer radius.
    pub fn with_quant_radius(mut self, r: u32) -> Self {
        self.quant_radius = r;
        self
    }

    /// Replaces the worker-thread count for chunk-parallel compression.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Replaces the target points-per-chunk (`None` derives it from
    /// `threads`).
    pub fn with_chunk_points(mut self, points: Option<usize>) -> Self {
        self.chunk_points = points;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`SzError::InvalidConfig`] if the error bound is non-positive,
    /// the quantizer radius is too small to hold any bin, the thread count is
    /// zero, or an explicit chunk size is zero.
    pub fn validate(&self) -> Result<(), SzError> {
        self.error_bound.validate()?;
        if self.threads == 0 {
            return Err(SzError::InvalidConfig("thread count must be at least 1".into()));
        }
        if self.chunk_points == Some(0) {
            return Err(SzError::InvalidConfig("chunk size must be at least 1 point".into()));
        }
        if self.quant_radius < 2 {
            return Err(SzError::InvalidConfig(format!(
                "quantizer radius must be at least 2, got {}",
                self.quant_radius
            )));
        }
        if self.quant_radius > (1 << 24) {
            return Err(SzError::InvalidConfig(format!(
                "quantizer radius {} exceeds the supported maximum of 2^24",
                self.quant_radius
            )));
        }
        Ok(())
    }
}

/// Step-by-step construction of a [`LossyConfig`], validated at
/// [`build`](LossyConfigBuilder::build) time.
///
/// Unlike the `with_*` methods (which mutate a complete preset), the builder
/// starts from the SZ3 pipeline shape and *requires* an error bound:
///
/// ```
/// use ocelot_sz::config::LossyConfig;
///
/// assert!(LossyConfig::builder().build().is_err(), "no bound set");
/// let cfg = LossyConfig::builder().rel(1e-4).threads(8).build().unwrap();
/// assert_eq!(cfg.threads, 8);
/// ```
#[derive(Debug, Clone)]
pub struct LossyConfigBuilder {
    config: LossyConfig,
    bound_set: bool,
}

impl LossyConfigBuilder {
    /// Sets an absolute pointwise error bound.
    pub fn abs(mut self, eb: f64) -> Self {
        self.config.error_bound = ErrorBound::Abs(eb);
        self.bound_set = true;
        self
    }

    /// Sets a value-range-relative error bound.
    pub fn rel(mut self, eb: f64) -> Self {
        self.config.error_bound = ErrorBound::Rel(eb);
        self.bound_set = true;
        self
    }

    /// Sets any [`ErrorBound`] directly.
    pub fn error_bound(mut self, eb: ErrorBound) -> Self {
        self.config.error_bound = eb;
        self.bound_set = true;
        self
    }

    /// Selects the decorrelation predictor.
    pub fn predictor(mut self, p: PredictorKind) -> Self {
        self.config.predictor = p;
        self
    }

    /// Selects the lossless backend.
    pub fn backend(mut self, b: LosslessBackend) -> Self {
        self.config.backend = b;
        self
    }

    /// Sets the quantizer radius.
    pub fn quant_radius(mut self, r: u32) -> Self {
        self.config.quant_radius = r;
        self
    }

    /// Sets the chunk-parallel worker count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Pins the chunk layout to roughly `points` data points per chunk.
    pub fn chunk_points(mut self, points: usize) -> Self {
        self.config.chunk_points = Some(points);
        self
    }

    /// Finishes and validates the configuration.
    ///
    /// # Errors
    /// Returns [`SzError::InvalidConfig`] if no error bound was set or any
    /// field fails [`LossyConfig::validate`].
    pub fn build(self) -> Result<LossyConfig, SzError> {
        if !self.bound_set {
            return Err(SzError::InvalidConfig(
                "an error bound is required: call .abs(), .rel(), or .error_bound()".into(),
            ));
        }
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_bound_resolves_against_range() {
        let d = Dataset::new(vec![4], vec![0.0f32, 1.0, 2.0, 4.0]).unwrap();
        let eb = ErrorBound::Rel(1e-2).resolve(&d);
        assert!((eb - 0.04).abs() < 1e-12);
    }

    #[test]
    fn relative_bound_on_constant_data_is_positive() {
        let d = Dataset::<f32>::constant(vec![8], 3.0).unwrap();
        assert!(ErrorBound::Rel(1e-3).resolve(&d) > 0.0);
    }

    #[test]
    fn absolute_bound_passes_through() {
        let d = Dataset::<f64>::constant(vec![2], 0.0).unwrap();
        assert_eq!(ErrorBound::Abs(0.5).resolve(&d), 0.5);
    }

    #[test]
    fn validate_rejects_nonpositive_bounds() {
        assert!(ErrorBound::Abs(0.0).validate().is_err());
        assert!(ErrorBound::Rel(-1.0).validate().is_err());
        assert!(ErrorBound::Abs(f64::NAN).validate().is_err());
        assert!(ErrorBound::Abs(1e-6).validate().is_ok());
    }

    #[test]
    fn config_validate_checks_radius() {
        let cfg = LossyConfig::sz3(1e-3).with_quant_radius(1);
        assert!(cfg.validate().is_err());
        let cfg = LossyConfig::sz3(1e-3).with_quant_radius(1 << 25);
        assert!(cfg.validate().is_err());
        assert!(LossyConfig::sz3(1e-3).validate().is_ok());
    }

    #[test]
    fn predictor_ids_are_unique() {
        let mut ids: Vec<u8> = PredictorKind::ALL.iter().map(|p| p.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), PredictorKind::ALL.len());
    }

    #[test]
    fn presets_have_expected_shape() {
        assert_eq!(LossyConfig::sz3(1e-3).predictor, PredictorKind::InterpCubic);
        assert_eq!(LossyConfig::sz2(1e-3).predictor, PredictorKind::Regression);
        assert_eq!(LossyConfig::lorenzo(1e-3).backend, LosslessBackend::Huffman);
    }

    #[test]
    fn config_serde_round_trip() {
        let cfg = LossyConfig::sz3(1e-4).with_threads(4).with_chunk_points(Some(1 << 16));
        let json = serde_json::to_string(&cfg).unwrap();
        let back: LossyConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn builder_requires_an_error_bound() {
        assert!(matches!(LossyConfig::builder().build(), Err(SzError::InvalidConfig(_))));
        assert!(LossyConfig::builder().abs(1e-3).build().is_ok());
    }

    #[test]
    fn builder_matches_preset_plus_with_methods() {
        let built = LossyConfig::builder()
            .abs(1e-3)
            .predictor(PredictorKind::Regression)
            .backend(LosslessBackend::Huffman)
            .quant_radius(1 << 10)
            .threads(4)
            .chunk_points(4096)
            .build()
            .unwrap();
        let preset = LossyConfig::sz3_abs(1e-3)
            .with_predictor(PredictorKind::Regression)
            .with_backend(LosslessBackend::Huffman)
            .with_quant_radius(1 << 10)
            .with_threads(4)
            .with_chunk_points(Some(4096));
        assert_eq!(built, preset);
    }

    #[test]
    fn validate_rejects_zero_threads_and_zero_chunk() {
        assert!(LossyConfig::sz3(1e-3).with_threads(0).validate().is_err());
        assert!(LossyConfig::sz3(1e-3).with_chunk_points(Some(0)).validate().is_err());
        assert!(LossyConfig::builder().abs(1e-3).threads(0).build().is_err());
    }
}
