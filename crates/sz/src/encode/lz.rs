//! Byte-oriented LZ77 dictionary coder with hash-chain match search.
//!
//! Plays the role Zstd plays in SZ3's pipeline: a fast dictionary pass over
//! the Huffman output that exploits repeated byte patterns (headers, aligned
//! runs, periodic structures). The format is LZ4-flavoured:
//!
//! ```text
//! token: literal_len (u8, 255-extension) | match_len (u8, 255-extension)
//!        literals… | match_dist (u16 LE)
//! ```
//!
//! A final block may have `match_len == 0` (no match, literals only).

use crate::error::SzError;

const MIN_MATCH: usize = 4;
const MAX_DIST: usize = 65535;
const HASH_BITS: u32 = 16;
/// Length of hash chains to walk; bounds worst-case compression time.
const MAX_CHAIN: usize = 32;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

fn write_len(out: &mut Vec<u8>, mut len: usize) {
    if len < 255 {
        out.push(len as u8);
        return;
    }
    out.push(255);
    len -= 255;
    while len >= 255 {
        out.push(255);
        len -= 255;
    }
    out.push(len as u8);
}

fn read_len(bytes: &[u8], pos: &mut usize) -> Result<usize, SzError> {
    let mut len = 0usize;
    loop {
        if *pos >= bytes.len() {
            return Err(SzError::CorruptStream("lz: truncated length".into()));
        }
        let b = bytes[*pos];
        *pos += 1;
        len += b as usize;
        if b != 255 {
            return Ok(len);
        }
    }
}

/// Compresses `input` with LZ77. The output starts with the original length
/// (u64 LE) so decompression can pre-allocate and validate.
pub fn lz_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.extend_from_slice(&(input.len() as u64).to_le_bytes());

    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; input.len()];

    let mut lit_start = 0usize;
    let mut i = 0usize;
    while i + MIN_MATCH <= input.len() {
        let h = hash4(&input[i..]);
        // Walk the chain for the best match within the window.
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut cand = head[h];
        let mut steps = 0;
        while cand != usize::MAX && steps < MAX_CHAIN {
            let dist = i - cand;
            if dist > MAX_DIST {
                break;
            }
            let max_len = input.len() - i;
            let mut l = 0usize;
            while l < max_len && input[cand + l] == input[i + l] {
                l += 1;
            }
            if l > best_len {
                best_len = l;
                best_dist = dist;
            }
            cand = prev[cand];
            steps += 1;
        }
        if best_len >= MIN_MATCH {
            // Emit (literals, match).
            write_len(&mut out, i - lit_start);
            write_len(&mut out, best_len);
            out.extend_from_slice(&input[lit_start..i]);
            out.extend_from_slice(&(best_dist as u16).to_le_bytes());
            // Insert the covered positions into the chains.
            let end = (i + best_len).min(input.len().saturating_sub(MIN_MATCH - 1));
            let mut j = i;
            while j < end {
                let hj = hash4(&input[j..]);
                prev[j] = head[hj];
                head[hj] = j;
                j += 1;
            }
            i += best_len;
            lit_start = i;
        } else {
            prev[i] = head[h];
            head[h] = i;
            i += 1;
        }
    }
    // Trailing literals with a zero match.
    write_len(&mut out, input.len() - lit_start);
    write_len(&mut out, 0);
    out.extend_from_slice(&input[lit_start..]);
    out
}

/// Decompresses a stream produced by [`lz_compress`].
///
/// # Errors
/// Returns [`SzError::CorruptStream`] on truncation, an out-of-range match
/// distance, or a length mismatch with the header.
pub fn lz_decompress(bytes: &[u8]) -> Result<Vec<u8>, SzError> {
    if bytes.len() < 8 {
        return Err(SzError::CorruptStream("lz: missing header".into()));
    }
    let expected = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")) as usize;
    // A corrupt header can claim an absurd size; cap the pre-allocation and
    // let the vector grow if a legitimate large stream needs it.
    let mut out = Vec::with_capacity(expected.min(1 << 24));
    let mut pos = 8usize;
    while out.len() < expected {
        let lit_len = read_len(bytes, &mut pos)?;
        let match_len = read_len(bytes, &mut pos)?;
        if pos + lit_len > bytes.len() {
            return Err(SzError::CorruptStream("lz: truncated literals".into()));
        }
        out.extend_from_slice(&bytes[pos..pos + lit_len]);
        pos += lit_len;
        if match_len > 0 {
            if pos + 2 > bytes.len() {
                return Err(SzError::CorruptStream("lz: truncated distance".into()));
            }
            let dist = u16::from_le_bytes([bytes[pos], bytes[pos + 1]]) as usize;
            pos += 2;
            if dist == 0 || dist > out.len() {
                return Err(SzError::CorruptStream(format!("lz: invalid distance {dist} at offset {}", out.len())));
            }
            // Overlapping copy, byte by byte (runs rely on this).
            let start = out.len() - dist;
            for k in 0..match_len {
                let b = out[start + k];
                out.push(b);
            }
        } else if lit_len == 0 {
            return Err(SzError::CorruptStream("lz: zero-progress block".into()));
        }
    }
    if out.len() != expected {
        return Err(SzError::CorruptStream(format!("lz: expected {expected} bytes, produced {}", out.len())));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let c = lz_compress(data);
        let d = lz_decompress(&c).unwrap();
        assert_eq!(d, data);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        round_trip(&[]);
        round_trip(&[1]);
        round_trip(&[1, 2, 3]);
    }

    #[test]
    fn repetitive_input_compresses() {
        let data: Vec<u8> = b"abcdefgh".iter().cycle().take(10_000).copied().collect();
        let c = lz_compress(&data);
        assert!(c.len() < data.len() / 10, "compressed to {}", c.len());
        assert_eq!(lz_decompress(&c).unwrap(), data);
    }

    #[test]
    fn overlapping_match_run() {
        let data = vec![7u8; 5000]; // match distance 1, overlapping copies
        round_trip(&data);
    }

    #[test]
    fn incompressible_input_round_trips() {
        // Pseudo-random bytes: no matches, pure literal path.
        let mut state = 0x12345678u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 24) as u8
            })
            .collect();
        round_trip(&data);
    }

    #[test]
    fn long_range_matches_within_window() {
        let mut data = vec![0u8; 0];
        let chunk: Vec<u8> = (0..=255u8).collect();
        data.extend_from_slice(&chunk);
        data.extend(vec![9u8; 60_000]); // push the first chunk near the window edge
        data.extend_from_slice(&chunk);
        round_trip(&data);
    }

    #[test]
    fn corrupt_streams_error_not_panic() {
        let c = lz_compress(b"hello world hello world hello world");
        assert!(lz_decompress(&c[..4]).is_err());
        let mut bad = c.clone();
        let n = bad.len();
        bad.truncate(n - 3);
        assert!(lz_decompress(&bad).is_err());
        // Header claiming more bytes than the stream yields.
        let mut huge = c;
        huge[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(lz_decompress(&huge).is_err());
    }
}
