//! Zero-run-length coding for quantization-bin streams.
//!
//! At large error bounds almost every bin equals the zero-error code, so runs
//! of that symbol dominate. This coder replaces each run of the designated
//! *hot symbol* with an escape followed by a varint run length, leaving other
//! symbols untouched; the result is then typically Huffman-coded.

/// Encodes `symbols`, collapsing runs of `hot` (length ≥ 4) into
/// `[ESCAPE, run_lo, run_hi]` triples in a fresh symbol space.
///
/// The output symbol space is the input space shifted by 1 (so symbol `s`
/// becomes `s + 1`), reserving `0` as the run escape. Run lengths are split
/// into two 16-bit halves carried as symbols.
pub fn rle_encode(symbols: &[u32], hot: u32) -> Vec<u32> {
    const MIN_RUN: usize = 4;
    let mut out = Vec::with_capacity(symbols.len() / 2 + 8);
    let mut i = 0;
    while i < symbols.len() {
        let s = symbols[i];
        if s == hot {
            let mut j = i;
            while j < symbols.len() && symbols[j] == hot {
                j += 1;
            }
            let run = j - i;
            if run >= MIN_RUN {
                let run = run as u32;
                out.push(0); // escape
                out.push((run & 0xFFFF) + 1);
                out.push((run >> 16) + 1);
            } else {
                for _ in 0..run {
                    out.push(s + 1);
                }
            }
            i = j;
        } else {
            out.push(s + 1);
            i += 1;
        }
    }
    out
}

/// Decodes a stream produced by [`rle_encode`] with the same `hot` symbol.
///
/// Returns `None` if the stream is malformed (truncated escape sequence or a
/// zero where a shifted symbol is expected).
pub fn rle_decode(encoded: &[u32], hot: u32) -> Option<Vec<u32>> {
    let mut out = Vec::with_capacity(encoded.len() * 2);
    let mut i = 0;
    while i < encoded.len() {
        let s = encoded[i];
        if s == 0 {
            if i + 2 >= encoded.len() {
                return None;
            }
            let lo = encoded[i + 1].checked_sub(1)?;
            let hi = encoded[i + 2].checked_sub(1)?;
            if lo > 0xFFFF {
                return None;
            }
            let run = (hi << 16) | lo;
            for _ in 0..run {
                out.push(hot);
            }
            i += 3;
        } else {
            out.push(s - 1);
            i += 1;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed() {
        let hot = 32768u32;
        let mut syms = vec![hot; 100];
        syms.extend([1, 2, 3, hot, hot, 4]);
        syms.extend(vec![hot; 70000]); // run longer than 16 bits
        let enc = rle_encode(&syms, hot);
        assert_eq!(rle_decode(&enc, hot).unwrap(), syms);
        assert!(enc.len() < syms.len() / 10);
    }

    #[test]
    fn short_runs_are_left_inline() {
        let syms = vec![7u32, 7, 7, 1]; // run of 3 < MIN_RUN
        let enc = rle_encode(&syms, 7);
        assert_eq!(enc, vec![8, 8, 8, 2]);
        assert_eq!(rle_decode(&enc, 7).unwrap(), syms);
    }

    #[test]
    fn empty_round_trip() {
        assert_eq!(rle_decode(&rle_encode(&[], 0), 0).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn no_hot_symbols() {
        let syms = vec![1u32, 2, 3, 4, 5];
        let enc = rle_encode(&syms, 99);
        assert_eq!(rle_decode(&enc, 99).unwrap(), syms);
    }

    #[test]
    fn truncated_escape_is_rejected() {
        let enc = vec![0u32, 5]; // escape missing its high half
        assert!(rle_decode(&enc, 1).is_none());
    }

    #[test]
    fn invalid_zero_halves_rejected() {
        // Escape halves are stored +1, so a raw 0 half is invalid.
        assert!(rle_decode(&[0u32, 0, 1], 1).is_none());
    }
}
