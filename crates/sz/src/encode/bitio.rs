//! Bit-granular reader and writer over byte buffers.
//!
//! Bits are packed most-significant-bit first within each byte, which keeps
//! canonical Huffman codes lexicographically ordered in the byte stream.
//!
//! Both ends run on a 64-bit shift accumulator: the writer collects bits in
//! the low end of a `u64` and spills whole bytes, the reader keeps up to 64
//! look-ahead bits loaded so a multi-bit read is one shift and one mask
//! instead of a per-bit loop. The byte layout is identical to the historical
//! bit-by-bit implementation.

use crate::error::SzError;

/// Low-`count` bit mask (`count <= 64`).
#[inline(always)]
fn mask(count: u32) -> u64 {
    if count >= 64 {
        u64::MAX
    } else {
        (1u64 << count) - 1
    }
}

/// Append-only bit writer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Pending bits, right-aligned in the low `nbits` bits (< 8 between
    /// calls; bits above `nbits` are garbage and masked on spill).
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with reserved capacity (in bytes).
    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter { bytes: Vec::with_capacity(bytes), acc: 0, nbits: 0 }
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.bytes.len() as u64 * 8 + self.nbits as u64
    }

    /// Writes a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Writes the low `count` bits of `value`, most significant first.
    ///
    /// # Panics
    /// Panics if `count > 64`.
    #[inline]
    pub fn write_bits(&mut self, value: u64, count: u8) {
        assert!(count <= 64, "cannot write more than 64 bits at once");
        let count = count as u32;
        if count > 56 {
            // Split so the accumulator (holding < 8 pending bits) never
            // needs more than 64 bits of room.
            let hi = count - 32;
            self.write_bits((value >> 32) & mask(hi), hi as u8);
            self.write_bits(value & mask(32), 32);
            return;
        }
        if count == 0 {
            return;
        }
        self.acc = (self.acc << count) | (value & mask(count));
        self.nbits += count;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.bytes.push((self.acc >> self.nbits) as u8);
        }
    }

    /// Finishes writing, returning the packed bytes (zero-padded to a byte
    /// boundary).
    pub fn into_bytes(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            let byte = ((self.acc & mask(self.nbits)) << (8 - self.nbits)) as u8;
            self.bytes.push(byte);
        }
        self.bytes
    }
}

/// Sequential bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next byte to load into the accumulator.
    byte_pos: usize,
    /// Look-ahead bits, right-aligned in the low `have` bits.
    acc: u64,
    have: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, byte_pos: 0, acc: 0, have: 0 }
    }

    /// Number of bits consumed so far.
    pub fn bit_pos(&self) -> u64 {
        self.byte_pos as u64 * 8 - self.have as u64
    }

    /// Loads bytes into the accumulator until it holds more than 56 bits or
    /// the input is exhausted.
    #[inline(always)]
    fn refill(&mut self) {
        while self.have <= 56 && self.byte_pos < self.bytes.len() {
            self.acc = (self.acc << 8) | self.bytes[self.byte_pos] as u64;
            self.byte_pos += 1;
            self.have += 8;
        }
    }

    /// Reads one bit.
    ///
    /// # Errors
    /// Returns [`SzError::CorruptStream`] at end of input.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, SzError> {
        if self.have == 0 {
            self.refill();
            if self.have == 0 {
                return Err(SzError::CorruptStream("bit stream exhausted".into()));
            }
        }
        self.have -= 1;
        Ok((self.acc >> self.have) & 1 == 1)
    }

    /// Reads `count` bits into the low bits of a `u64`, MSB first.
    ///
    /// # Errors
    /// Returns [`SzError::CorruptStream`] if fewer than `count` bits remain.
    ///
    /// # Panics
    /// Panics if `count > 64`.
    #[inline]
    pub fn read_bits(&mut self, count: u8) -> Result<u64, SzError> {
        assert!(count <= 64, "cannot read more than 64 bits at once");
        let count = count as u32;
        if count > 56 {
            let hi = count - 32;
            let a = self.read_bits(hi as u8)?;
            let b = self.read_bits(32)?;
            return Ok((a << 32) | b);
        }
        if count == 0 {
            return Ok(0);
        }
        if self.have < count {
            self.refill();
            if self.have < count {
                return Err(SzError::CorruptStream("bit stream exhausted".into()));
            }
        }
        self.have -= count;
        Ok((self.acc >> self.have) & mask(count))
    }

    /// Peeks the next `count` bits (`count <= 56`) without consuming them,
    /// zero-padded past the end of the stream. Returns the bits left-aligned
    /// to `count` plus how many of them are real.
    #[inline]
    pub fn peek_bits(&mut self, count: u8) -> (u64, u32) {
        debug_assert!(count <= 56);
        let count = count as u32;
        self.refill();
        let avail = self.have.min(count);
        if self.have >= count {
            ((self.acc >> (self.have - count)) & mask(count), avail)
        } else {
            ((self.acc & mask(self.have)) << (count - self.have), avail)
        }
    }

    /// Consumes `count` bits previously observed via [`BitReader::peek_bits`]
    /// (`count` must not exceed the real-bit count peek returned).
    #[inline]
    pub fn consume(&mut self, count: u32) {
        debug_assert!(count <= self.have);
        self.have -= count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_round_trip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), pattern.len() as u64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn multi_bit_values_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xDEADBEEF, 32);
        w.write_bits(1, 1);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_bits(1).unwrap(), 1);
    }

    #[test]
    fn read_past_end_errors() {
        let mut r = BitReader::new(&[0xFF]);
        assert!(r.read_bits(8).is_ok());
        assert!(r.read_bit().is_err());
    }

    #[test]
    fn zero_bit_write_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(123, 0);
        assert_eq!(w.bit_len(), 0);
        assert!(w.into_bytes().is_empty());
    }

    #[test]
    fn msb_first_packing() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1); // first bit lands in the MSB of byte 0
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1000_0000]);
    }

    #[test]
    fn sixty_four_bit_values() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 64);
        w.write_bits(0, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(64).unwrap(), 0);
    }

    #[test]
    fn accumulator_layout_matches_bit_by_bit_reference() {
        // Cross-check the packed bytes against a naive per-bit packer over a
        // pseudo-random write schedule.
        let mut w = BitWriter::new();
        let mut naive: Vec<bool> = Vec::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        for _ in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let count = (state >> 58) as u8 % 57;
            let value = state;
            w.write_bits(value, count);
            for i in (0..count).rev() {
                naive.push((value >> i) & 1 == 1);
            }
        }
        let mut packed = vec![0u8; naive.len().div_ceil(8)];
        for (i, &b) in naive.iter().enumerate() {
            if b {
                packed[i / 8] |= 1 << (7 - (i % 8));
            }
        }
        assert_eq!(w.bit_len(), naive.len() as u64);
        assert_eq!(w.into_bytes(), packed);
    }

    #[test]
    fn peek_is_zero_padded_and_consume_advances() {
        let mut r = BitReader::new(&[0b1011_0000]);
        let (bits, avail) = r.peek_bits(4);
        assert_eq!((bits, avail), (0b1011, 4));
        r.consume(2);
        let (bits, avail) = r.peek_bits(12);
        assert_eq!(avail, 6, "only 6 real bits remain");
        assert_eq!(bits, 0b11_0000 << 6, "padded with zeros past the end");
        assert_eq!(r.bit_pos(), 2);
    }
}
