//! Bit-granular reader and writer over byte buffers.
//!
//! Bits are packed most-significant-bit first within each byte, which keeps
//! canonical Huffman codes lexicographically ordered in the byte stream.

use crate::error::SzError;

/// Append-only bit writer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Number of valid bits in the last byte (0 = last byte full/absent).
    partial: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with reserved capacity (in bytes).
    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter { bytes: Vec::with_capacity(bytes), partial: 0 }
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        if self.partial == 0 {
            self.bytes.len() as u64 * 8
        } else {
            (self.bytes.len() as u64 - 1) * 8 + self.partial as u64
        }
    }

    /// Writes a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        if self.partial == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.last_mut().expect("byte pushed above");
            *last |= 1 << (7 - self.partial);
        }
        self.partial = (self.partial + 1) % 8;
    }

    /// Writes the low `count` bits of `value`, most significant first.
    ///
    /// # Panics
    /// Panics if `count > 64`.
    #[inline]
    pub fn write_bits(&mut self, value: u64, count: u8) {
        assert!(count <= 64, "cannot write more than 64 bits at once");
        for i in (0..count).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Finishes writing, returning the packed bytes (zero-padded to a byte
    /// boundary).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Sequential bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Number of bits consumed so far.
    pub fn bit_pos(&self) -> u64 {
        self.pos
    }

    /// Reads one bit.
    ///
    /// # Errors
    /// Returns [`SzError::CorruptStream`] at end of input.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, SzError> {
        let byte = (self.pos / 8) as usize;
        if byte >= self.bytes.len() {
            return Err(SzError::CorruptStream("bit stream exhausted".into()));
        }
        let bit = (self.bytes[byte] >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `count` bits into the low bits of a `u64`, MSB first.
    ///
    /// # Errors
    /// Returns [`SzError::CorruptStream`] if fewer than `count` bits remain.
    ///
    /// # Panics
    /// Panics if `count > 64`.
    #[inline]
    pub fn read_bits(&mut self, count: u8) -> Result<u64, SzError> {
        assert!(count <= 64, "cannot read more than 64 bits at once");
        let mut v = 0u64;
        for _ in 0..count {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_round_trip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), pattern.len() as u64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn multi_bit_values_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xDEADBEEF, 32);
        w.write_bits(1, 1);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_bits(1).unwrap(), 1);
    }

    #[test]
    fn read_past_end_errors() {
        let mut r = BitReader::new(&[0xFF]);
        assert!(r.read_bits(8).is_ok());
        assert!(r.read_bit().is_err());
    }

    #[test]
    fn zero_bit_write_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(123, 0);
        assert_eq!(w.bit_len(), 0);
        assert!(w.into_bytes().is_empty());
    }

    #[test]
    fn msb_first_packing() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1); // first bit lands in the MSB of byte 0
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1000_0000]);
    }

    #[test]
    fn sixty_four_bit_values() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 64);
        w.write_bits(0, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(64).unwrap(), 0);
    }
}
