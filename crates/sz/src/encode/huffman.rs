//! Canonical Huffman coding over `u32` symbols (quantization bins).
//!
//! The encoder serializes a compact code-length table (distinct symbols are
//! sparse within the 2·radius alphabet) followed by the MSB-first bit stream.
//! Canonical code assignment makes decoding table-driven and keeps the header
//! small.

use std::collections::HashMap;

use crate::encode::bitio::{BitReader, BitWriter};
use crate::error::SzError;

/// Maximum admitted code length. Frequencies are flattened and the tree is
/// rebuilt if the optimal tree would exceed this (only possible for highly
/// skewed distributions over large alphabets).
const MAX_CODE_LEN: u8 = 32;

/// Computes Huffman code lengths for a frequency table.
///
/// Returns a map from symbol to code length in bits. Single-symbol inputs get
/// length 1. Empty input returns an empty map.
pub fn code_lengths(freqs: &HashMap<u32, u64>) -> HashMap<u32, u8> {
    if freqs.is_empty() {
        return HashMap::new();
    }
    if freqs.len() == 1 {
        let (&sym, _) = freqs.iter().next().expect("len checked");
        return HashMap::from([(sym, 1)]);
    }
    let mut flatten = 0u32;
    loop {
        let lengths = build_lengths(freqs, flatten);
        let max = lengths.values().copied().max().unwrap_or(0);
        if max <= MAX_CODE_LEN {
            return lengths;
        }
        flatten += 4;
    }
}

/// One round of Huffman tree construction with optional frequency flattening
/// (`freq >> flatten | 1`), returning code lengths.
fn build_lengths(freqs: &HashMap<u32, u64>, flatten: u32) -> HashMap<u32, u8> {
    // Heap of (weight, node). Nodes: leaves then internal. Ties broken by
    // insertion order for determinism.
    #[derive(Clone, Copy, PartialEq, Eq)]
    struct Node {
        weight: u64,
        seq: u32,
        idx: u32,
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse for min-heap behaviour inside BinaryHeap.
            other.weight.cmp(&self.weight).then(other.seq.cmp(&self.seq))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut symbols: Vec<(u32, u64)> = freqs.iter().map(|(&s, &f)| (s, (f >> flatten) | 1)).collect();
    symbols.sort_unstable_by_key(|&(s, _)| s); // deterministic order
    let n = symbols.len();
    // parent[i] for all tree nodes; leaves occupy [0, n).
    let mut parent = vec![u32::MAX; 2 * n - 1];
    let mut heap = std::collections::BinaryHeap::with_capacity(n);
    for (i, &(_, w)) in symbols.iter().enumerate() {
        heap.push(Node { weight: w, seq: i as u32, idx: i as u32 });
    }
    let mut next = n as u32;
    let mut seq = n as u32;
    while heap.len() > 1 {
        let a = heap.pop().expect("len > 1");
        let b = heap.pop().expect("len > 1");
        parent[a.idx as usize] = next;
        parent[b.idx as usize] = next;
        heap.push(Node { weight: a.weight + b.weight, seq, idx: next });
        next += 1;
        seq += 1;
    }
    let mut out = HashMap::with_capacity(n);
    for (i, &(sym, _)) in symbols.iter().enumerate() {
        let mut len = 0u8;
        let mut node = i as u32;
        while parent[node as usize] != u32::MAX {
            node = parent[node as usize];
            len += 1;
        }
        out.insert(sym, len.max(1));
    }
    out
}

/// Assigns canonical codes: symbols sorted by (length, symbol) receive
/// consecutive codes per length.
fn canonical_codes(lengths: &HashMap<u32, u8>) -> Vec<(u32, u8, u64)> {
    let mut items: Vec<(u32, u8)> = lengths.iter().map(|(&s, &l)| (s, l)).collect();
    items.sort_unstable_by_key(|&(s, l)| (l, s));
    let mut out = Vec::with_capacity(items.len());
    let mut code = 0u64;
    let mut prev_len = 0u8;
    for (sym, len) in items {
        code <<= len - prev_len;
        out.push((sym, len, code));
        code += 1;
        prev_len = len;
    }
    out
}

/// Encodes a symbol sequence with canonical Huffman coding.
///
/// The output is self-describing: `[table, count, bitstream]`.
pub fn huffman_encode(symbols: &[u32]) -> Vec<u8> {
    let mut freqs: HashMap<u32, u64> = HashMap::new();
    for &s in symbols {
        *freqs.entry(s).or_insert(0) += 1;
    }
    let lengths = code_lengths(&freqs);
    let canon = canonical_codes(&lengths);
    let code_of: HashMap<u32, (u8, u64)> = canon.iter().map(|&(s, l, c)| (s, (l, c))).collect();

    let mut out = Vec::new();
    out.extend_from_slice(&(canon.len() as u32).to_le_bytes());
    for &(sym, len, _) in &canon {
        out.extend_from_slice(&sym.to_le_bytes());
        out.push(len);
    }
    out.extend_from_slice(&(symbols.len() as u64).to_le_bytes());
    let mut bits = BitWriter::with_capacity(symbols.len() / 4);
    for &s in symbols {
        let (len, code) = code_of[&s];
        bits.write_bits(code, len);
    }
    let payload = bits.into_bytes();
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes a stream produced by [`huffman_encode`].
///
/// # Errors
/// Returns [`SzError::CorruptStream`] if the stream is truncated or contains
/// an invalid code.
pub fn huffman_decode(bytes: &[u8]) -> Result<Vec<u32>, SzError> {
    let err = |m: &str| SzError::CorruptStream(format!("huffman: {m}"));
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], SzError> {
        if *pos + n > bytes.len() {
            return Err(SzError::CorruptStream("huffman: truncated header".into()));
        }
        let s = &bytes[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };
    let n_syms = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
    // Each table entry takes 5 bytes; reject counts the stream cannot hold
    // before allocating (corrupt headers must not trigger huge allocations).
    if n_syms > bytes.len().saturating_sub(pos) / 5 {
        return Err(err("symbol table larger than stream"));
    }
    let mut lengths = HashMap::with_capacity(n_syms);
    for _ in 0..n_syms {
        let sym = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
        let len = take(&mut pos, 1)?[0];
        if len == 0 || len > MAX_CODE_LEN {
            return Err(err("invalid code length"));
        }
        if lengths.insert(sym, len).is_some() {
            return Err(err("duplicate symbol in table"));
        }
    }
    let count = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes")) as usize;
    let payload_len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes")) as usize;
    let payload = take(&mut pos, payload_len)?;

    if count == 0 {
        return Ok(Vec::new());
    }
    if lengths.is_empty() {
        return Err(err("empty table with nonzero count"));
    }
    // Every symbol consumes at least one bit of payload.
    if count > payload.len().saturating_mul(8) {
        return Err(err("symbol count exceeds payload bits"));
    }
    let canon = canonical_codes(&lengths);
    // Per-length decode tables: first code and first index for each length.
    let max_len = canon.iter().map(|&(_, l, _)| l).max().expect("nonempty") as usize;
    let mut first_code = vec![u64::MAX; max_len + 1];
    let mut first_idx = vec![0usize; max_len + 1];
    let mut last_code = vec![0u64; max_len + 1];
    let mut has_len = vec![false; max_len + 1];
    for (i, &(_, len, code)) in canon.iter().enumerate() {
        let l = len as usize;
        if !has_len[l] {
            has_len[l] = true;
            first_code[l] = code;
            first_idx[l] = i;
        }
        last_code[l] = code;
    }
    let syms_by_canon: Vec<u32> = canon.iter().map(|&(s, _, _)| s).collect();

    let mut out = Vec::with_capacity(count);
    let mut reader = BitReader::new(payload);
    for _ in 0..count {
        let mut code = 0u64;
        let mut len = 0usize;
        loop {
            code = (code << 1) | reader.read_bit()? as u64;
            len += 1;
            if len > max_len {
                return Err(err("code exceeds maximum length"));
            }
            if has_len[len] && code >= first_code[len] && code <= last_code[len] {
                let idx = first_idx[len] + (code - first_code[len]) as usize;
                out.push(syms_by_canon[idx]);
                break;
            }
        }
    }
    Ok(out)
}

/// Per-symbol share of the encoded bit stream, used for the `P0` feature:
/// `share(s) = freq(s)·len(s) / Σ freq·len`.
///
/// Returns an empty map for empty input.
pub fn encoded_share(symbols: &[u32]) -> HashMap<u32, f64> {
    let mut freqs: HashMap<u32, u64> = HashMap::new();
    for &s in symbols {
        *freqs.entry(s).or_insert(0) += 1;
    }
    let lengths = code_lengths(&freqs);
    let total: f64 = freqs.iter().map(|(s, &f)| f as f64 * lengths[s] as f64).sum();
    if total == 0.0 {
        return HashMap::new();
    }
    freqs
        .into_iter()
        .map(|(s, f)| {
            let share = f as f64 * lengths[&s] as f64 / total;
            (s, share)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_small() {
        let syms = vec![5u32, 5, 5, 7, 7, 1, 5, 9, 9, 9, 9];
        let enc = huffman_encode(&syms);
        assert_eq!(huffman_decode(&enc).unwrap(), syms);
    }

    #[test]
    fn round_trip_empty() {
        let enc = huffman_encode(&[]);
        assert_eq!(huffman_decode(&enc).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn round_trip_single_symbol_run() {
        let syms = vec![42u32; 1000];
        let enc = huffman_encode(&syms);
        assert_eq!(huffman_decode(&enc).unwrap(), syms);
        // 1000 identical symbols should compress to well under 1000 bytes.
        assert!(enc.len() < 200, "got {}", enc.len());
    }

    #[test]
    fn round_trip_large_alphabet() {
        let syms: Vec<u32> = (0..5000u32).map(|i| (i * i) % 700).collect();
        let enc = huffman_encode(&syms);
        assert_eq!(huffman_decode(&enc).unwrap(), syms);
    }

    #[test]
    fn skewed_distribution_compresses_well() {
        // 95% zeros: entropy ≈ 0.29 bits/symbol.
        let mut syms = vec![0u32; 9500];
        syms.extend((0..500u32).map(|i| 1 + i % 30));
        let enc = huffman_encode(&syms);
        assert_eq!(huffman_decode(&enc).unwrap(), syms);
        assert!(enc.len() < 10000 / 4, "compressed to {} bytes", enc.len());
    }

    #[test]
    fn truncated_stream_is_detected() {
        let syms = vec![1u32, 2, 3, 4, 5, 1, 2, 3];
        let enc = huffman_encode(&syms);
        assert!(huffman_decode(&enc[..enc.len() - 1]).is_err());
        assert!(huffman_decode(&enc[..3]).is_err());
    }

    #[test]
    fn lengths_satisfy_kraft_inequality() {
        let mut freqs = HashMap::new();
        for i in 0u32..100 {
            freqs.insert(i, (i as u64 + 1) * 7 % 97 + 1);
        }
        let lengths = code_lengths(&freqs);
        let kraft: f64 = lengths.values().map(|&l| 2f64.powi(-(l as i32))).sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft sum {kraft}");
    }

    #[test]
    fn encoded_share_sums_to_one() {
        let syms = vec![0u32, 0, 0, 1, 1, 2];
        let share = encoded_share(&syms);
        let sum: f64 = share.values().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(share[&0] > share[&2]);
    }

    #[test]
    fn fibonacci_like_frequencies_stay_within_max_len() {
        // Fibonacci frequencies force maximal tree depth; the flattening
        // fallback must cap lengths at MAX_CODE_LEN.
        let mut freqs = HashMap::new();
        let (mut a, mut b) = (1u64, 1u64);
        for i in 0..80u32 {
            freqs.insert(i, a);
            let c = a.saturating_add(b);
            a = b;
            b = c;
        }
        let lengths = code_lengths(&freqs);
        assert!(lengths.values().all(|&l| l <= MAX_CODE_LEN));
        // Must still be decodable end-to-end.
        let syms: Vec<u32> = (0..80u32).collect();
        let enc = huffman_encode(&syms);
        assert_eq!(huffman_decode(&enc).unwrap(), syms);
    }
}
