//! Canonical Huffman coding over `u32` symbols (quantization bins).
//!
//! The encoder serializes a compact code-length table (distinct symbols are
//! sparse within the 2·radius alphabet) followed by the MSB-first bit stream.
//! Canonical code assignment makes decoding table-driven and keeps the header
//! small.
//!
//! Internally the coder works on dense `Vec`-indexed tables rather than hash
//! maps: the alphabet is bounded by 2·radius (+ RLE escape symbols), so symbol
//! lookup is a single indexed load on both the frequency-count and encode hot
//! paths. Decoding runs through a prefix LUT that resolves codes of up to
//! [`LUT_BITS`] bits in one probe, falling back to the canonical per-length
//! walk for longer codes.
//!
//! [`HuffmanTable`] exposes the table/stream halves separately so one
//! canonical table can be built once per job and shared across chunks; the
//! self-describing [`huffman_encode`]/[`huffman_decode`] pair layers the two
//! halves back together and its byte format is unchanged.

use std::collections::{BTreeMap, HashMap};

use crate::encode::bitio::{BitReader, BitWriter};
use crate::error::SzError;

/// Maximum admitted code length. Frequencies are flattened and the tree is
/// rebuilt if the optimal tree would exceed this (only possible for highly
/// skewed distributions over large alphabets).
pub const MAX_CODE_LEN: u8 = 32;

/// Codes up to this many bits resolve through a single table probe when
/// decoding; longer codes use the per-length canonical walk.
const LUT_BITS: u8 = 12;

/// Largest symbol value for which the dense (symbol-indexed) count and encode
/// tables are used; sparser alphabets above this fall back to sorted lookup so
/// pathological symbol values cannot trigger huge allocations.
const DENSE_LIMIT: u32 = 1 << 22;

fn corrupt(m: &str) -> SzError {
    SzError::CorruptStream(format!("huffman: {m}"))
}

/// Counts symbol frequencies, returning `(symbol, freq)` pairs sorted by
/// symbol.
pub(crate) fn freq_pairs(symbols: &[u32]) -> Vec<(u32, u64)> {
    let Some(&max_sym) = symbols.iter().max() else {
        return Vec::new();
    };
    if max_sym < DENSE_LIMIT {
        let mut counts = vec![0u64; max_sym as usize + 1];
        for &s in symbols {
            counts[s as usize] += 1;
        }
        counts.iter().enumerate().filter(|&(_, &f)| f > 0).map(|(s, &f)| (s as u32, f)).collect()
    } else {
        let mut counts: BTreeMap<u32, u64> = BTreeMap::new();
        for &s in symbols {
            *counts.entry(s).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }
}

/// Computes Huffman code lengths for `(symbol, freq)` pairs sorted by symbol.
///
/// Single-symbol inputs get length 1. Empty input returns an empty vector.
/// The result stays sorted by symbol.
pub(crate) fn lengths_from_pairs(pairs: &[(u32, u64)]) -> Vec<(u32, u8)> {
    if pairs.is_empty() {
        return Vec::new();
    }
    if pairs.len() == 1 {
        return vec![(pairs[0].0, 1)];
    }
    let mut flatten = 0u32;
    loop {
        let lengths = build_lengths(pairs, flatten);
        let max = lengths.iter().map(|&(_, l)| l).max().unwrap_or(0);
        if max <= MAX_CODE_LEN {
            return lengths;
        }
        flatten += 4;
    }
}

/// One round of Huffman tree construction with optional frequency flattening
/// (`freq >> flatten | 1`), returning code lengths sorted by symbol.
///
/// `pairs` must be sorted by symbol: leaf seeding order is the tie-breaker
/// that makes tree shape (and thus the blob bytes) deterministic.
fn build_lengths(pairs: &[(u32, u64)], flatten: u32) -> Vec<(u32, u8)> {
    // Heap of (weight, node). Nodes: leaves then internal. Ties broken by
    // insertion order for determinism.
    #[derive(Clone, Copy, PartialEq, Eq)]
    struct Node {
        weight: u64,
        seq: u32,
        idx: u32,
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse for min-heap behaviour inside BinaryHeap.
            other.weight.cmp(&self.weight).then(other.seq.cmp(&self.seq))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let n = pairs.len();
    // parent[i] for all tree nodes; leaves occupy [0, n).
    let mut parent = vec![u32::MAX; 2 * n - 1];
    let mut heap = std::collections::BinaryHeap::with_capacity(n);
    for (i, &(_, f)) in pairs.iter().enumerate() {
        heap.push(Node { weight: (f >> flatten) | 1, seq: i as u32, idx: i as u32 });
    }
    let mut next = n as u32;
    let mut seq = n as u32;
    while heap.len() > 1 {
        let a = heap.pop().expect("len > 1");
        let b = heap.pop().expect("len > 1");
        parent[a.idx as usize] = next;
        parent[b.idx as usize] = next;
        heap.push(Node { weight: a.weight + b.weight, seq, idx: next });
        next += 1;
        seq += 1;
    }
    pairs
        .iter()
        .enumerate()
        .map(|(i, &(sym, _))| {
            let mut len = 0u8;
            let mut node = i as u32;
            while parent[node as usize] != u32::MAX {
                node = parent[node as usize];
                len += 1;
            }
            (sym, len.max(1))
        })
        .collect()
}

/// Assigns canonical codes: symbols sorted by (length, symbol) receive
/// consecutive codes per length.
fn canonical_codes(mut items: Vec<(u32, u8)>) -> Vec<(u32, u8, u64)> {
    items.sort_unstable_by_key(|&(s, l)| (l, s));
    let mut out = Vec::with_capacity(items.len());
    let mut code = 0u64;
    let mut prev_len = 0u8;
    for (sym, len) in items {
        code <<= len - prev_len;
        out.push((sym, len, code));
        code += 1;
        prev_len = len;
    }
    out
}

/// Computes Huffman code lengths for a frequency table.
///
/// Returns a map from symbol to code length in bits. Single-symbol inputs get
/// length 1. Empty input returns an empty map.
pub fn code_lengths(freqs: &HashMap<u32, u64>) -> HashMap<u32, u8> {
    let mut pairs: Vec<(u32, u64)> = freqs.iter().map(|(&s, &f)| (s, f)).collect();
    pairs.sort_unstable_by_key(|&(s, _)| s);
    lengths_from_pairs(&pairs).into_iter().collect()
}

/// Symbol → (length, code) lookup for encoding: dense `Vec` indexed by symbol
/// for the bounded quantization alphabet, sorted pairs otherwise.
#[derive(Debug, Clone)]
enum EncodeTable {
    /// `table[sym] = (len, code)`; `len == 0` means the symbol has no code.
    Dense(Vec<(u8, u64)>),
    /// Sorted by symbol, for alphabets too sparse to index densely.
    Sparse(Vec<(u32, u8, u64)>),
}

/// A canonical Huffman table, usable on its own (shared across chunks) or as
/// the internals of the self-describing [`huffman_encode`] format.
#[derive(Debug, Clone)]
pub struct HuffmanTable {
    /// `(symbol, len, code)` sorted by (len, symbol) — the canonical order,
    /// which is also the serialized table order.
    canon: Vec<(u32, u8, u64)>,
    encode: EncodeTable,
    max_len: usize,
    // Per-length decode tables (indexed by code length).
    first_code: Vec<u64>,
    first_idx: Vec<usize>,
    last_code: Vec<u64>,
    has_len: Vec<bool>,
    syms_by_canon: Vec<u32>,
    /// `lut[prefix] = (sym, len)` for codes of at most [`LUT_BITS`] bits;
    /// `len == 0` marks prefixes that need the slow walk.
    lut: Vec<(u32, u8)>,
}

impl HuffmanTable {
    /// Builds a table from `(symbol, length)` pairs (lengths in
    /// `1..=MAX_CODE_LEN`, symbols unique).
    ///
    /// # Errors
    /// Returns [`SzError::CorruptStream`] on an invalid length or duplicate
    /// symbol.
    pub fn from_lengths(lengths: Vec<(u32, u8)>) -> Result<Self, SzError> {
        if lengths.is_empty() {
            return Err(corrupt("empty code-length table"));
        }
        for &(_, len) in &lengths {
            if len == 0 || len > MAX_CODE_LEN {
                return Err(corrupt("invalid code length"));
            }
        }
        let mut syms: Vec<u32> = lengths.iter().map(|&(s, _)| s).collect();
        syms.sort_unstable();
        if syms.windows(2).any(|w| w[0] == w[1]) {
            return Err(corrupt("duplicate symbol in table"));
        }

        let canon = canonical_codes(lengths);
        let max_sym = *syms.last().expect("nonempty");
        let encode = if max_sym < DENSE_LIMIT {
            let mut table = vec![(0u8, 0u64); max_sym as usize + 1];
            for &(sym, len, code) in &canon {
                table[sym as usize] = (len, code);
            }
            EncodeTable::Dense(table)
        } else {
            let mut pairs = canon.clone();
            pairs.sort_unstable_by_key(|&(s, _, _)| s);
            EncodeTable::Sparse(pairs)
        };

        let max_len = canon.iter().map(|&(_, l, _)| l).max().expect("nonempty") as usize;
        let mut first_code = vec![u64::MAX; max_len + 1];
        let mut first_idx = vec![0usize; max_len + 1];
        let mut last_code = vec![0u64; max_len + 1];
        let mut has_len = vec![false; max_len + 1];
        for (i, &(_, len, code)) in canon.iter().enumerate() {
            let l = len as usize;
            if !has_len[l] {
                has_len[l] = true;
                first_code[l] = code;
                first_idx[l] = i;
            }
            last_code[l] = code;
        }
        let syms_by_canon: Vec<u32> = canon.iter().map(|&(s, _, _)| s).collect();

        let mut lut = vec![(0u32, 0u8); 1 << LUT_BITS];
        for &(sym, len, code) in &canon {
            // Guard against malformed (Kraft-violating) deserialized tables
            // whose canonical codes overflow their length.
            if len > LUT_BITS || code >> len != 0 {
                continue;
            }
            let fill = 1usize << (LUT_BITS - len);
            let base = (code as usize) << (LUT_BITS - len);
            lut[base..base + fill].fill((sym, len));
        }

        Ok(HuffmanTable { canon, encode, max_len, first_code, first_idx, last_code, has_len, syms_by_canon, lut })
    }

    /// Builds the canonical table for a symbol sequence, `None` if empty.
    pub fn from_symbols(symbols: &[u32]) -> Option<Self> {
        let pairs = freq_pairs(symbols);
        if pairs.is_empty() {
            return None;
        }
        Some(Self::from_lengths(lengths_from_pairs(&pairs)).expect("built lengths are valid"))
    }

    /// Number of distinct symbols in the table.
    pub fn n_symbols(&self) -> usize {
        self.canon.len()
    }

    /// `(len, code)` for `sym`, `None` if the symbol has no code.
    #[inline]
    fn code_of(&self, sym: u32) -> Option<(u8, u64)> {
        match &self.encode {
            EncodeTable::Dense(table) => match table.get(sym as usize) {
                Some(&(len, code)) if len > 0 => Some((len, code)),
                _ => None,
            },
            EncodeTable::Sparse(pairs) => {
                pairs.binary_search_by_key(&sym, |&(s, _, _)| s).ok().map(|i| (pairs[i].1, pairs[i].2))
            }
        }
    }

    /// Serializes the code-length table: `[n_syms u32][(sym u32, len u8)×n]`
    /// in canonical order (the same layout [`huffman_encode`] embeds).
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.canon.len() * 5);
        out.extend_from_slice(&(self.canon.len() as u32).to_le_bytes());
        for &(sym, len, _) in &self.canon {
            out.extend_from_slice(&sym.to_le_bytes());
            out.push(len);
        }
        out
    }

    /// Parses a table serialized by [`HuffmanTable::serialize`]. The entire
    /// slice must be consumed.
    ///
    /// # Errors
    /// Returns [`SzError::CorruptStream`] on truncation, trailing bytes, or an
    /// invalid table.
    pub fn deserialize(bytes: &[u8]) -> Result<Self, SzError> {
        let lengths = parse_length_table(bytes, &mut 0)?;
        Self::from_lengths(lengths)
    }

    /// Encodes `symbols` as `[count u64][payload_len u64][payload bits]`.
    ///
    /// Returns `None` if any symbol has no code in this table (the caller
    /// falls back to a self-describing local table).
    pub fn encode_stream(&self, symbols: &[u32]) -> Option<Vec<u8>> {
        let mut bits = BitWriter::with_capacity(symbols.len() / 4);
        for &s in symbols {
            let (len, code) = self.code_of(s)?;
            bits.write_bits(code, len);
        }
        let payload = bits.into_bytes();
        let mut out = Vec::with_capacity(16 + payload.len());
        out.extend_from_slice(&(symbols.len() as u64).to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        Some(out)
    }

    /// Decodes a stream produced by [`HuffmanTable::encode_stream`].
    ///
    /// # Errors
    /// Returns [`SzError::CorruptStream`] on truncation or an invalid code.
    pub fn decode_stream(&self, bytes: &[u8]) -> Result<Vec<u32>, SzError> {
        let mut pos = 0usize;
        let count = read_u64(bytes, &mut pos)? as usize;
        let payload_len = read_u64(bytes, &mut pos)? as usize;
        if payload_len > bytes.len() - pos {
            return Err(corrupt("truncated payload"));
        }
        let payload = &bytes[pos..pos + payload_len];
        if count == 0 {
            return Ok(Vec::new());
        }
        // Every symbol consumes at least one bit of payload.
        if count > payload.len().saturating_mul(8) {
            return Err(corrupt("symbol count exceeds payload bits"));
        }
        self.decode_payload(count, payload)
    }

    /// Decodes exactly `count` symbols from a packed bit payload.
    fn decode_payload(&self, count: usize, payload: &[u8]) -> Result<Vec<u32>, SzError> {
        let mut out = Vec::with_capacity(count);
        let mut reader = BitReader::new(payload);
        for _ in 0..count {
            // Fast path: resolve short codes with one LUT probe. The peek is
            // zero-padded past the end of the stream, which is safe: a valid
            // code is a prefix of every padded extension, so the probe lands
            // on the right entry and `avail` guards against over-consuming.
            let (prefix, avail) = reader.peek_bits(LUT_BITS);
            let (sym, len) = self.lut[prefix as usize];
            if len > 0 {
                if (len as u32) > avail {
                    return Err(corrupt("bit stream exhausted"));
                }
                reader.consume(len as u32);
                out.push(sym);
                continue;
            }
            // Slow path: canonical per-length walk for codes > LUT_BITS bits.
            let mut code = 0u64;
            let mut len = 0usize;
            loop {
                code = (code << 1) | reader.read_bit()? as u64;
                len += 1;
                if len > self.max_len {
                    return Err(corrupt("code exceeds maximum length"));
                }
                if self.has_len[len] && code >= self.first_code[len] && code <= self.last_code[len] {
                    let idx = self.first_idx[len] + (code - self.first_code[len]) as usize;
                    out.push(self.syms_by_canon[idx]);
                    break;
                }
            }
        }
        Ok(out)
    }
}

fn read_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, SzError> {
    if *pos + 8 > bytes.len() {
        return Err(corrupt("truncated header"));
    }
    let v = u64::from_le_bytes(bytes[*pos..*pos + 8].try_into().expect("8 bytes"));
    *pos += 8;
    Ok(v)
}

/// Parses a `[n_syms u32][(sym u32, len u8)×n]` length table, advancing
/// `pos`. Validates lengths and symbol uniqueness but not the Kraft sum.
fn parse_length_table(bytes: &[u8], pos: &mut usize) -> Result<Vec<(u32, u8)>, SzError> {
    if *pos + 4 > bytes.len() {
        return Err(corrupt("truncated header"));
    }
    let n_syms = u32::from_le_bytes(bytes[*pos..*pos + 4].try_into().expect("4 bytes")) as usize;
    *pos += 4;
    // Each table entry takes 5 bytes; reject counts the stream cannot hold
    // before allocating (corrupt headers must not trigger huge allocations).
    if n_syms > bytes.len().saturating_sub(*pos) / 5 {
        return Err(corrupt("symbol table larger than stream"));
    }
    let mut lengths = Vec::with_capacity(n_syms);
    for _ in 0..n_syms {
        let sym = u32::from_le_bytes(bytes[*pos..*pos + 4].try_into().expect("4 bytes"));
        let len = bytes[*pos + 4];
        *pos += 5;
        if len == 0 || len > MAX_CODE_LEN {
            return Err(corrupt("invalid code length"));
        }
        lengths.push((sym, len));
    }
    let mut syms: Vec<u32> = lengths.iter().map(|&(s, _)| s).collect();
    syms.sort_unstable();
    if syms.windows(2).any(|w| w[0] == w[1]) {
        return Err(corrupt("duplicate symbol in table"));
    }
    Ok(lengths)
}

/// Encodes a symbol sequence with canonical Huffman coding.
///
/// The output is self-describing: `[table, count, bitstream]`.
pub fn huffman_encode(symbols: &[u32]) -> Vec<u8> {
    let pairs = freq_pairs(symbols);
    if pairs.is_empty() {
        let mut out = Vec::with_capacity(20);
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&0u64.to_le_bytes());
        out.extend_from_slice(&0u64.to_le_bytes());
        return out;
    }
    let table = HuffmanTable::from_lengths(lengths_from_pairs(&pairs)).expect("built lengths are valid");
    let mut out = table.serialize();
    let body = table.encode_stream(symbols).expect("table covers its own symbols");
    out.extend_from_slice(&body);
    out
}

/// Decodes a stream produced by [`huffman_encode`].
///
/// # Errors
/// Returns [`SzError::CorruptStream`] if the stream is truncated or contains
/// an invalid code.
pub fn huffman_decode(bytes: &[u8]) -> Result<Vec<u32>, SzError> {
    let mut pos = 0usize;
    let lengths = parse_length_table(bytes, &mut pos)?;
    let count = read_u64(bytes, &mut pos)? as usize;
    let payload_len = read_u64(bytes, &mut pos)? as usize;
    if payload_len > bytes.len() - pos {
        return Err(corrupt("truncated header"));
    }
    let payload = &bytes[pos..pos + payload_len];

    if count == 0 {
        return Ok(Vec::new());
    }
    if lengths.is_empty() {
        return Err(corrupt("empty table with nonzero count"));
    }
    // Every symbol consumes at least one bit of payload.
    if count > payload.len().saturating_mul(8) {
        return Err(corrupt("symbol count exceeds payload bits"));
    }
    HuffmanTable::from_lengths(lengths)?.decode_payload(count, payload)
}

/// Per-symbol share of the encoded bit stream, used for the `P0` feature:
/// `share(s) = freq(s)·len(s) / Σ freq·len`.
///
/// Returns an empty map for empty input.
pub fn encoded_share(symbols: &[u32]) -> HashMap<u32, f64> {
    let pairs = freq_pairs(symbols);
    let lengths = lengths_from_pairs(&pairs);
    let total: f64 = pairs.iter().zip(&lengths).map(|(&(_, f), &(_, l))| f as f64 * l as f64).sum();
    if total == 0.0 {
        return HashMap::new();
    }
    pairs.into_iter().zip(lengths).map(|((s, f), (_, l))| (s, f as f64 * l as f64 / total)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_small() {
        let syms = vec![5u32, 5, 5, 7, 7, 1, 5, 9, 9, 9, 9];
        let enc = huffman_encode(&syms);
        assert_eq!(huffman_decode(&enc).unwrap(), syms);
    }

    #[test]
    fn round_trip_empty() {
        let enc = huffman_encode(&[]);
        assert_eq!(huffman_decode(&enc).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn round_trip_single_symbol_run() {
        let syms = vec![42u32; 1000];
        let enc = huffman_encode(&syms);
        assert_eq!(huffman_decode(&enc).unwrap(), syms);
        // 1000 identical symbols should compress to well under 1000 bytes.
        assert!(enc.len() < 200, "got {}", enc.len());
    }

    #[test]
    fn round_trip_large_alphabet() {
        let syms: Vec<u32> = (0..5000u32).map(|i| (i * i) % 700).collect();
        let enc = huffman_encode(&syms);
        assert_eq!(huffman_decode(&enc).unwrap(), syms);
    }

    #[test]
    fn skewed_distribution_compresses_well() {
        // 95% zeros: entropy ≈ 0.29 bits/symbol.
        let mut syms = vec![0u32; 9500];
        syms.extend((0..500u32).map(|i| 1 + i % 30));
        let enc = huffman_encode(&syms);
        assert_eq!(huffman_decode(&enc).unwrap(), syms);
        assert!(enc.len() < 10000 / 4, "compressed to {} bytes", enc.len());
    }

    #[test]
    fn truncated_stream_is_detected() {
        let syms = vec![1u32, 2, 3, 4, 5, 1, 2, 3];
        let enc = huffman_encode(&syms);
        assert!(huffman_decode(&enc[..enc.len() - 1]).is_err());
        assert!(huffman_decode(&enc[..3]).is_err());
    }

    #[test]
    fn lengths_satisfy_kraft_inequality() {
        let mut freqs = HashMap::new();
        for i in 0u32..100 {
            freqs.insert(i, (i as u64 + 1) * 7 % 97 + 1);
        }
        let lengths = code_lengths(&freqs);
        let kraft: f64 = lengths.values().map(|&l| 2f64.powi(-(l as i32))).sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft sum {kraft}");
    }

    #[test]
    fn encoded_share_sums_to_one() {
        let syms = vec![0u32, 0, 0, 1, 1, 2];
        let share = encoded_share(&syms);
        let sum: f64 = share.values().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(share[&0] > share[&2]);
    }

    #[test]
    fn fibonacci_like_frequencies_stay_within_max_len() {
        // Fibonacci frequencies force maximal tree depth; the flattening
        // fallback must cap lengths at MAX_CODE_LEN.
        let mut freqs = HashMap::new();
        let (mut a, mut b) = (1u64, 1u64);
        for i in 0..80u32 {
            freqs.insert(i, a);
            let c = a.saturating_add(b);
            a = b;
            b = c;
        }
        let lengths = code_lengths(&freqs);
        assert!(lengths.values().all(|&l| l <= MAX_CODE_LEN));
        // Must still be decodable end-to-end.
        let syms: Vec<u32> = (0..80u32).collect();
        let enc = huffman_encode(&syms);
        assert_eq!(huffman_decode(&enc).unwrap(), syms);
    }

    #[test]
    fn shared_table_round_trips_foreign_streams() {
        // Table built from one chunk's histogram encodes other chunks whose
        // symbols it covers.
        let chunk0: Vec<u32> = (0..2000u32).map(|i| i % 50).collect();
        let chunk1: Vec<u32> = (0..1500u32).map(|i| (i * 7) % 50).collect();
        let table = HuffmanTable::from_symbols(&chunk0).unwrap();
        let enc = table.encode_stream(&chunk1).unwrap();
        assert_eq!(table.decode_stream(&enc).unwrap(), chunk1);
    }

    #[test]
    fn escaping_symbol_rejects_shared_encode() {
        let table = HuffmanTable::from_symbols(&[1, 2, 3, 1, 2, 1]).unwrap();
        assert!(table.encode_stream(&[1, 2, 99]).is_none());
        assert!(table.encode_stream(&[1, 2, 3]).is_some());
    }

    #[test]
    fn table_serialization_round_trips() {
        let syms: Vec<u32> = (0..3000u32).map(|i| (i * i) % 257).collect();
        let table = HuffmanTable::from_symbols(&syms).unwrap();
        let blob = table.serialize();
        let back = HuffmanTable::deserialize(&blob).unwrap();
        let enc = table.encode_stream(&syms).unwrap();
        assert_eq!(back.decode_stream(&enc).unwrap(), syms);
        assert_eq!(back.serialize(), blob);
    }

    #[test]
    fn table_deserialize_rejects_malformed() {
        assert!(HuffmanTable::deserialize(&[]).is_err());
        assert!(HuffmanTable::deserialize(&0u32.to_le_bytes()).is_err(), "empty table");
        // Duplicate symbol.
        let mut blob = 2u32.to_le_bytes().to_vec();
        for _ in 0..2 {
            blob.extend_from_slice(&7u32.to_le_bytes());
            blob.push(1);
        }
        assert!(HuffmanTable::deserialize(&blob).is_err());
        // Zero code length.
        let mut blob = 1u32.to_le_bytes().to_vec();
        blob.extend_from_slice(&7u32.to_le_bytes());
        blob.push(0);
        assert!(HuffmanTable::deserialize(&blob).is_err());
    }

    #[test]
    fn codes_longer_than_lut_bits_decode_via_slow_path() {
        // Fibonacci-ish weights push many code lengths past LUT_BITS.
        let mut syms = Vec::new();
        let mut f = 1u64;
        for i in 0..24u32 {
            for _ in 0..f.min(100_000) {
                syms.push(i);
            }
            f = f.saturating_mul(2);
        }
        let table = HuffmanTable::from_symbols(&syms).unwrap();
        assert!(table.canon.iter().any(|&(_, l, _)| l > LUT_BITS), "test needs codes beyond the LUT");
        let sample: Vec<u32> = (0..24u32).cycle().take(500).collect();
        let enc = table.encode_stream(&sample).unwrap();
        assert_eq!(table.decode_stream(&enc).unwrap(), sample);
    }

    #[test]
    fn sparse_alphabet_above_dense_limit_round_trips() {
        // Symbols past DENSE_LIMIT exercise the sorted-lookup encode table.
        let syms = vec![u32::MAX, 0, u32::MAX - 7, 0, u32::MAX, 5_000_000];
        let enc = huffman_encode(&syms);
        assert_eq!(huffman_decode(&enc).unwrap(), syms);
        let table = HuffmanTable::from_symbols(&syms).unwrap();
        let stream = table.encode_stream(&syms).unwrap();
        assert_eq!(table.decode_stream(&stream).unwrap(), syms);
    }

    use proptest::prelude::*;

    /// Deterministic skewed symbol stream: `skew > 1` concentrates mass on
    /// low symbols (deep codes for the tail), `skew = 1` is uniform.
    fn skewed_stream(n_syms: usize, len: usize, seed: u64, skew: f64) -> Vec<u32> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let u = (state >> 11) as f64 / (1u64 << 53) as f64;
                ((u.powf(skew) * n_syms as f64) as usize).min(n_syms - 1) as u32
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Random symbol streams — including single-symbol alphabets — must
        // round-trip bit-exactly through a shared table built from their own
        // histogram, and through a serialize/deserialize copy of it (the
        // container ships tables as bytes, so the rebuilt table must produce
        // the identical bitstream).
        #[test]
        fn random_streams_round_trip_shared_tables(
            n_syms in prop_oneof![Just(1usize), Just(2), Just(7), Just(40), Just(300)],
            len in 1usize..3000,
            seed in any::<u64>(),
            skew in prop_oneof![Just(1.0f64), Just(2.0), Just(8.0)],
        ) {
            let symbols = skewed_stream(n_syms, len, seed, skew);
            let table = HuffmanTable::from_symbols(&symbols).unwrap();
            let enc = table.encode_stream(&symbols).expect("own symbols always encodable");
            prop_assert_eq!(table.decode_stream(&enc).unwrap(), symbols.clone());
            let rebuilt = HuffmanTable::deserialize(&table.serialize()).unwrap();
            prop_assert_eq!(rebuilt.serialize(), table.serialize());
            let enc2 = rebuilt.encode_stream(&symbols).expect("rebuilt table covers the alphabet");
            prop_assert_eq!(&enc2, &enc);
            prop_assert_eq!(rebuilt.decode_stream(&enc).unwrap(), symbols);
        }

        // Fibonacci-growth histograms want codes deeper than MAX_CODE_LEN;
        // the flatten must keep every length legal and the flattened table
        // must still round-trip arbitrary streams over its alphabet.
        #[test]
        fn flattened_deep_tables_round_trip(
            n_syms in 34usize..60,
            len in 1usize..500,
            seed in any::<u64>(),
        ) {
            let mut pairs: Vec<(u32, u64)> = Vec::with_capacity(n_syms);
            let (mut a, mut b) = (1u64, 1u64);
            for sym in 0..n_syms as u32 {
                pairs.push((sym, a));
                let next = a.saturating_add(b);
                a = b;
                b = next;
            }
            let lengths = lengths_from_pairs(&pairs);
            prop_assert!(lengths.iter().all(|&(_, l)| (1..=MAX_CODE_LEN).contains(&l)));
            let table = HuffmanTable::from_lengths(lengths).unwrap();
            let symbols = skewed_stream(n_syms, len, seed, 4.0);
            let enc = table.encode_stream(&symbols).expect("alphabet covered");
            prop_assert_eq!(table.decode_stream(&enc).unwrap(), symbols);
        }

        // A symbol outside the shared alphabet must refuse the shared encode
        // (the pipeline then escapes to a local self-describing table, which
        // must round-trip the same stream).
        #[test]
        fn foreign_symbols_escape_to_local(
            n_syms in 2usize..100,
            len in 1usize..500,
            seed in any::<u64>(),
        ) {
            let shared = HuffmanTable::from_symbols(&(0..n_syms as u32).collect::<Vec<_>>()).unwrap();
            let mut symbols = skewed_stream(n_syms, len, seed, 1.0);
            symbols.push(n_syms as u32); // not in the shared alphabet
            prop_assert!(shared.encode_stream(&symbols).is_none());
            let local = huffman_encode(&symbols);
            prop_assert_eq!(huffman_decode(&local).unwrap(), symbols);
        }
    }
}
