//! Entropy and dictionary coders used as the lossless stage of the
//! compression pipeline.

pub mod bitio;
pub mod huffman;
pub mod lz;
pub mod rle;

pub use bitio::{BitReader, BitWriter};
pub use huffman::{huffman_decode, huffman_encode, HuffmanTable};
pub use lz::{lz_compress, lz_decompress};
pub use rle::{rle_decode, rle_encode};
