//! Error type for compression and decompression failures.

use std::fmt;

/// Errors returned by compression, decompression, and codec routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SzError {
    /// The dataset shape is unsupported (empty, zero-sized dimension, or
    /// more dimensions than the selected predictor supports).
    InvalidShape(String),
    /// A configuration value is out of range (e.g. non-positive error bound).
    InvalidConfig(String),
    /// The compressed stream is malformed or truncated.
    CorruptStream(String),
    /// The compressed stream was produced for a different scalar type.
    TypeMismatch { expected: &'static str, found: String },
    /// The stream header declares an unsupported format version.
    UnsupportedVersion(u16),
}

impl fmt::Display for SzError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SzError::InvalidShape(msg) => write!(f, "invalid dataset shape: {msg}"),
            SzError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SzError::CorruptStream(msg) => write!(f, "corrupt compressed stream: {msg}"),
            SzError::TypeMismatch { expected, found } => {
                write!(f, "scalar type mismatch: stream holds {found}, requested {expected}")
            }
            SzError::UnsupportedVersion(v) => write!(f, "unsupported stream format version {v}"),
        }
    }
}

impl std::error::Error for SzError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = SzError::InvalidShape("empty dims".into());
        let s = e.to_string();
        assert!(s.starts_with("invalid dataset shape"));
        assert!(s.contains("empty dims"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SzError>();
    }
}
