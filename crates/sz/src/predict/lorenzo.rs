//! First-order Lorenzo predictor for 1-, 2-, and 3-D datasets.
//!
//! The Lorenzo predictor estimates each value from the inclusion–exclusion
//! sum of its already-processed neighbours in the hypercube behind it:
//!
//! * 1-D: `f(i−1)`
//! * 2-D: `f(i−1,j) + f(i,j−1) − f(i−1,j−1)`
//! * 3-D: seven-term alternating sum over the preceding corner cube.
//!
//! Out-of-domain neighbours read as `0`, so the first element is effectively
//! predicted as zero.

use crate::error::SzError;
use crate::ndarray::{Dataset, DatasetView};
use crate::predict::{PredictionStreams, StreamsView, UnpredictablePool};
use crate::quantizer::LinearQuantizer;
use crate::value::ScalarValue;

const EMPTY: &[u32] = &[];

/// Compresses `data`, returning quantization streams.
///
/// # Errors
/// Returns [`SzError::InvalidShape`] for datasets with more than 3 dims.
pub fn compress<T: ScalarValue>(
    data: DatasetView<'_, T>,
    quantizer: &LinearQuantizer,
) -> Result<PredictionStreams<T>, SzError> {
    match data.ndim() {
        1 => Ok(run::<T, false>(data.dims(), Some(data.values()), EMPTY, quantizer).0),
        2 => Ok(run2::<T, false>(data.dims(), Some(data.values()), EMPTY, quantizer).0),
        3 => Ok(run3::<T, false>(data.dims(), Some(data.values()), EMPTY, quantizer).0),
        n => Err(SzError::InvalidShape(format!("lorenzo predictor supports 1-3 dims, got {n}"))),
    }
}

/// Decompresses streams produced by [`compress`].
///
/// # Errors
/// Returns [`SzError::CorruptStream`] if stream lengths are inconsistent with
/// the shape, and [`SzError::InvalidShape`] for unsupported ranks.
pub fn decompress<T: ScalarValue>(
    dims: &[usize],
    streams: StreamsView<'_, T>,
    quantizer: &LinearQuantizer,
) -> Result<Dataset<T>, SzError> {
    let n: usize = dims.iter().product();
    if streams.codes.len() != n {
        return Err(SzError::CorruptStream(format!("lorenzo: {} codes for {} points", streams.codes.len(), n)));
    }
    let (_, recon, consumed) = match dims.len() {
        1 => run::<T, true>(dims, None, streams, quantizer),
        2 => run2::<T, true>(dims, None, streams, quantizer),
        3 => run3::<T, true>(dims, None, streams, quantizer),
        n => return Err(SzError::InvalidShape(format!("lorenzo predictor supports 1-3 dims, got {n}"))),
    };
    if !consumed {
        return Err(SzError::CorruptStream("lorenzo: unpredictable pool length mismatch".into()));
    }
    Dataset::new(dims.to_vec(), recon)
}

// The compress and decompress walks are the same traversal; `DECODE` selects
// whether codes are produced or consumed. `input` is Some(raw) when encoding.
//
// The per-rank loops below are *fused* predict→quantize kernels: each rank
// keeps a register-carried window of the reconstruction so the interior loop
// reads every neighbour from memory exactly once (one load per point in 2-D,
// three in 3-D, instead of three and seven) and performs no domain checks.
// Border points keep the literal `0.0` terms of the out-of-domain neighbours
// in the same operand order as the naive sum, so the floating-point result —
// and therefore every reconstruction bit — is unchanged (e.g. `0.0 + -0.0`
// is `+0.0`, which dropping the zero term would break). The pre-fusion loops
// are kept verbatim in `reference` below and the `fused_matches_scalar_*`
// proptests pin bit-equality.

trait StreamsArg<T> {
    fn codes(&self) -> &[u32];
    fn unpredictable(&self) -> &[T];
}
impl<T> StreamsArg<T> for PredictionStreams<T> {
    fn codes(&self) -> &[u32] {
        &self.codes
    }
    fn unpredictable(&self) -> &[T] {
        &self.unpredictable
    }
}
impl<T> StreamsArg<T> for &[u32] {
    fn codes(&self) -> &[u32] {
        self
    }
    fn unpredictable(&self) -> &[T] {
        &[]
    }
}
impl<T> StreamsArg<T> for &PredictionStreams<T> {
    fn codes(&self) -> &[u32] {
        &self.codes
    }
    fn unpredictable(&self) -> &[T] {
        &self.unpredictable
    }
}
impl<T> StreamsArg<T> for StreamsView<'_, T> {
    fn codes(&self) -> &[u32] {
        self.codes
    }
    fn unpredictable(&self) -> &[T] {
        self.unpredictable
    }
}

/// One fused predict→quantize (encode) or predict→recover (decode) step at
/// `off`. Returns the reconstruction as `f64` so callers can carry it in a
/// register as the next point's neighbour.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn fused_step<T: ScalarValue, const DECODE: bool>(
    q: &LinearQuantizer,
    codes: &[u32],
    input: Option<&[T]>,
    off: usize,
    pred: f64,
    out: &mut PredictionStreams<T>,
    recon: &mut [T],
    pool: &mut UnpredictablePool<'_, T>,
) -> f64 {
    if DECODE {
        let code = codes[off];
        let v = if code == 0 { pool.take().unwrap_or_else(T::zero) } else { q.recover(code, pred) };
        recon[off] = v;
        v.to_f64()
    } else {
        let quantized = q.quantize(input.expect("encode has input")[off], pred);
        if quantized.code == 0 {
            out.unpredictable.push(quantized.reconstructed);
        }
        out.codes.push(quantized.code);
        recon[off] = quantized.reconstructed;
        quantized.reconstructed.to_f64()
    }
}

fn run<T: ScalarValue, const DECODE: bool>(
    dims: &[usize],
    input: Option<&[T]>,
    streams: impl StreamsArg<T>,
    q: &LinearQuantizer,
) -> (PredictionStreams<T>, Vec<T>, bool) {
    let n = dims[0];
    let mut out = PredictionStreams::with_capacity(if DECODE { 0 } else { n });
    let mut recon: Vec<T> = Vec::with_capacity(if DECODE { n } else { 0 });
    let mut pool = UnpredictablePool::new(streams.unpredictable());
    let codes = streams.codes();
    // The 1-D prediction is the previous reconstruction, carried in a
    // register: the loop never re-reads the reconstruction buffer, and the
    // encode path does not materialize one at all.
    let mut prev = 0.0f64;
    if DECODE {
        for &code in &codes[..n] {
            let v = if code == 0 { pool.take().unwrap_or_else(T::zero) } else { q.recover(code, prev) };
            recon.push(v);
            prev = v.to_f64();
        }
    } else {
        let input = input.expect("encode has input");
        for &value in &input[..n] {
            let quantized = q.quantize(value, prev);
            if quantized.code == 0 {
                out.unpredictable.push(quantized.reconstructed);
            }
            out.codes.push(quantized.code);
            prev = quantized.reconstructed.to_f64();
        }
    }
    let consumed = pool.fully_consumed();
    (out, recon, consumed)
}

fn run2<T: ScalarValue, const DECODE: bool>(
    dims: &[usize],
    input: Option<&[T]>,
    streams: impl StreamsArg<T>,
    q: &LinearQuantizer,
) -> (PredictionStreams<T>, Vec<T>, bool) {
    let (n0, n1) = (dims[0], dims[1]);
    let n = n0 * n1;
    let mut out = PredictionStreams::with_capacity(if DECODE { 0 } else { n });
    let mut recon: Vec<T> = vec![T::zero(); n];
    let mut pool = UnpredictablePool::new(streams.unpredictable());
    let codes = streams.codes();
    if n == 0 {
        return (out, recon, pool.fully_consumed());
    }
    // First row: the row above is out of domain; keep nonzero terms in the
    // reference operand order (above + left − diag). The all-zero corner
    // collapses to the literal: `0.0 + 0.0 - 0.0` is exactly `+0.0`.
    let mut left = fused_step::<T, DECODE>(q, codes, input, 0, 0.0, &mut out, &mut recon, &mut pool);
    for j in 1..n1 {
        let pred = (0.0 + left) - 0.0;
        left = fused_step::<T, DECODE>(q, codes, input, j, pred, &mut out, &mut recon, &mut pool);
    }
    for i in 1..n0 {
        let row = i * n1;
        // `above` walks the previous reconstructed row; the previous `above`
        // is exactly the diagonal neighbour, so the interior loop loads one
        // value per point.
        let mut above = recon[row - n1].to_f64();
        left = fused_step::<T, DECODE>(q, codes, input, row, (above + 0.0) - 0.0, &mut out, &mut recon, &mut pool);
        for j in 1..n1 {
            let diag = above;
            above = recon[row - n1 + j].to_f64();
            let pred = (above + left) - diag;
            left = fused_step::<T, DECODE>(q, codes, input, row + j, pred, &mut out, &mut recon, &mut pool);
        }
    }
    let consumed = pool.fully_consumed();
    (out, recon, consumed)
}

fn run3<T: ScalarValue, const DECODE: bool>(
    dims: &[usize],
    input: Option<&[T]>,
    streams: impl StreamsArg<T>,
    q: &LinearQuantizer,
) -> (PredictionStreams<T>, Vec<T>, bool) {
    let (n0, n1, n2) = (dims[0], dims[1], dims[2]);
    let n = n0 * n1 * n2;
    let mut out = PredictionStreams::with_capacity(if DECODE { 0 } else { n });
    let mut recon: Vec<T> = vec![T::zero(); n];
    let mut pool = UnpredictablePool::new(streams.unpredictable());
    let codes = streams.codes();
    let stride0 = n1 * n2;
    // Border points (any coordinate 0) take the checked seven-term sum, same
    // as the reference; interior rows carry four of the seven neighbours in
    // registers and load only three per point.
    let at = |recon: &[T], i: isize, j: isize, k: isize| -> f64 {
        if i < 0 || j < 0 || k < 0 {
            0.0
        } else {
            recon[i as usize * stride0 + j as usize * n2 + k as usize].to_f64()
        }
    };
    for i in 0..n0 {
        for j in 0..n1 {
            let row = i * stride0 + j * n2;
            let border_ks = if i == 0 || j == 0 { n2 } else { 1.min(n2) };
            for k in 0..border_ks {
                let (si, sj, sk) = (i as isize, j as isize, k as isize);
                let pred = at(&recon, si - 1, sj, sk) + at(&recon, si, sj - 1, sk) + at(&recon, si, sj, sk - 1)
                    - at(&recon, si - 1, sj - 1, sk)
                    - at(&recon, si - 1, sj, sk - 1)
                    - at(&recon, si, sj - 1, sk - 1)
                    + at(&recon, si - 1, sj - 1, sk - 1);
                fused_step::<T, DECODE>(q, codes, input, row + k, pred, &mut out, &mut recon, &mut pool);
            }
            if border_ks == n2 {
                continue;
            }
            // Interior of the row: i ≥ 1, j ≥ 1, k ≥ 1. Operand order matches
            // the reference sum term for term.
            let mut west = recon[row].to_f64();
            let mut up_west = recon[row - stride0].to_f64();
            let mut north_west = recon[row - n2].to_f64();
            let mut up_north_west = recon[row - stride0 - n2].to_f64();
            for k in 1..n2 {
                let off = row + k;
                let up = recon[off - stride0].to_f64();
                let north = recon[off - n2].to_f64();
                let up_north = recon[off - stride0 - n2].to_f64();
                let pred = up + north + west - up_north - up_west - north_west + up_north_west;
                west = fused_step::<T, DECODE>(q, codes, input, off, pred, &mut out, &mut recon, &mut pool);
                up_west = up;
                north_west = north;
                up_north_west = up_north;
            }
        }
    }
    let consumed = pool.fully_consumed();
    (out, recon, consumed)
}

/// The pre-fusion scalar walks, kept verbatim as the bit-equality oracle for
/// the fused kernels (see the `fused_matches_scalar_*` proptests).
#[cfg(test)]
mod reference {
    use super::*;

    pub(super) fn run<T: ScalarValue, const DECODE: bool>(
        dims: &[usize],
        input: Option<&[T]>,
        streams: impl StreamsArg<T>,
        q: &LinearQuantizer,
    ) -> (PredictionStreams<T>, Vec<T>, bool) {
        let n = dims[0];
        let mut out = PredictionStreams::with_capacity(n);
        let mut recon: Vec<T> = Vec::with_capacity(n);
        let mut pool = UnpredictablePool::new(streams.unpredictable());
        let codes = streams.codes();
        for i in 0..n {
            let pred = if i > 0 { recon[i - 1].to_f64() } else { 0.0 };
            if DECODE {
                let code = codes[i];
                let v = if code == 0 { pool.take().unwrap_or_else(T::zero) } else { q.recover(code, pred) };
                recon.push(v);
            } else {
                let quantized = q.quantize(input.expect("encode has input")[i], pred);
                if quantized.code == 0 {
                    out.unpredictable.push(quantized.reconstructed);
                }
                out.codes.push(quantized.code);
                recon.push(quantized.reconstructed);
            }
        }
        let consumed = pool.fully_consumed();
        (out, recon, consumed)
    }

    pub(super) fn run2<T: ScalarValue, const DECODE: bool>(
        dims: &[usize],
        input: Option<&[T]>,
        streams: impl StreamsArg<T>,
        q: &LinearQuantizer,
    ) -> (PredictionStreams<T>, Vec<T>, bool) {
        let (n0, n1) = (dims[0], dims[1]);
        let n = n0 * n1;
        let mut out = PredictionStreams::with_capacity(n);
        let mut recon: Vec<T> = vec![T::zero(); n];
        let mut pool = UnpredictablePool::new(streams.unpredictable());
        let codes = streams.codes();
        let at = |recon: &[T], i: isize, j: isize| -> f64 {
            if i < 0 || j < 0 {
                0.0
            } else {
                recon[i as usize * n1 + j as usize].to_f64()
            }
        };
        for i in 0..n0 {
            for j in 0..n1 {
                let (si, sj) = (i as isize, j as isize);
                let pred = at(&recon, si - 1, sj) + at(&recon, si, sj - 1) - at(&recon, si - 1, sj - 1);
                let off = i * n1 + j;
                if DECODE {
                    let code = codes[off];
                    recon[off] = if code == 0 { pool.take().unwrap_or_else(T::zero) } else { q.recover(code, pred) };
                } else {
                    let quantized = q.quantize(input.expect("encode has input")[off], pred);
                    if quantized.code == 0 {
                        out.unpredictable.push(quantized.reconstructed);
                    }
                    out.codes.push(quantized.code);
                    recon[off] = quantized.reconstructed;
                }
            }
        }
        let consumed = pool.fully_consumed();
        (out, recon, consumed)
    }

    pub(super) fn run3<T: ScalarValue, const DECODE: bool>(
        dims: &[usize],
        input: Option<&[T]>,
        streams: impl StreamsArg<T>,
        q: &LinearQuantizer,
    ) -> (PredictionStreams<T>, Vec<T>, bool) {
        let (n0, n1, n2) = (dims[0], dims[1], dims[2]);
        let n = n0 * n1 * n2;
        let mut out = PredictionStreams::with_capacity(n);
        let mut recon: Vec<T> = vec![T::zero(); n];
        let mut pool = UnpredictablePool::new(streams.unpredictable());
        let codes = streams.codes();
        let stride0 = n1 * n2;
        let at = |recon: &[T], i: isize, j: isize, k: isize| -> f64 {
            if i < 0 || j < 0 || k < 0 {
                0.0
            } else {
                recon[i as usize * stride0 + j as usize * n2 + k as usize].to_f64()
            }
        };
        for i in 0..n0 {
            for j in 0..n1 {
                for k in 0..n2 {
                    let (si, sj, sk) = (i as isize, j as isize, k as isize);
                    let pred = at(&recon, si - 1, sj, sk) + at(&recon, si, sj - 1, sk) + at(&recon, si, sj, sk - 1)
                        - at(&recon, si - 1, sj - 1, sk)
                        - at(&recon, si - 1, sj, sk - 1)
                        - at(&recon, si, sj - 1, sk - 1)
                        + at(&recon, si - 1, sj - 1, sk - 1);
                    let off = i * stride0 + j * n2 + k;
                    if DECODE {
                        let code = codes[off];
                        recon[off] =
                            if code == 0 { pool.take().unwrap_or_else(T::zero) } else { q.recover(code, pred) };
                    } else {
                        let quantized = q.quantize(input.expect("encode has input")[off], pred);
                        if quantized.code == 0 {
                            out.unpredictable.push(quantized.reconstructed);
                        }
                        out.codes.push(quantized.code);
                        recon[off] = quantized.reconstructed;
                    }
                }
            }
        }
        let consumed = pool.fully_consumed();
        (out, recon, consumed)
    }
}

/// Mean absolute Lorenzo prediction error over *raw* values (the "average
/// Lorenzo error" data-based feature from the paper §VI). Unlike
/// [`compress`], this predicts from raw neighbours, matching how the feature
/// is computed for quality prediction (cheap, no quantization).
pub fn mean_raw_error<T: ScalarValue>(data: &Dataset<T>) -> f64 {
    let dims = data.dims();
    let vals = data.values();
    let n = vals.len();
    if n == 0 {
        return 0.0;
    }
    let mut total = 0.0f64;
    match dims.len() {
        1 => {
            for i in 0..n {
                let pred = if i > 0 { vals[i - 1].to_f64() } else { 0.0 };
                total += (vals[i].to_f64() - pred).abs();
            }
        }
        2 => {
            let n1 = dims[1];
            let at = |i: isize, j: isize| -> f64 {
                if i < 0 || j < 0 {
                    0.0
                } else {
                    vals[i as usize * n1 + j as usize].to_f64()
                }
            };
            for i in 0..dims[0] as isize {
                for j in 0..n1 as isize {
                    let pred = at(i - 1, j) + at(i, j - 1) - at(i - 1, j - 1);
                    total += (at(i, j) - pred).abs();
                }
            }
        }
        _ => {
            // 3-D and higher: use the 3-D Lorenzo over the last three dims,
            // treating leading dims as batch.
            let d = dims.len();
            let (n0, n1, n2) = (dims[d - 3], dims[d - 2], dims[d - 1]);
            let batch: usize = dims[..d - 3].iter().product::<usize>().max(1);
            let stride0 = n1 * n2;
            let vol = n0 * stride0;
            for b in 0..batch {
                let base = b * vol;
                let at = |i: isize, j: isize, k: isize| -> f64 {
                    if i < 0 || j < 0 || k < 0 {
                        0.0
                    } else {
                        vals[base + i as usize * stride0 + j as usize * n2 + k as usize].to_f64()
                    }
                };
                for i in 0..n0 as isize {
                    for j in 0..n1 as isize {
                        for k in 0..n2 as isize {
                            let pred = at(i - 1, j, k) + at(i, j - 1, k) + at(i, j, k - 1)
                                - at(i - 1, j - 1, k)
                                - at(i - 1, j, k - 1)
                                - at(i, j - 1, k - 1)
                                + at(i - 1, j - 1, k - 1);
                            total += (at(i, j, k) - pred).abs();
                        }
                    }
                }
            }
        }
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_round_trip(dims: Vec<usize>, eb: f64, gen: impl FnMut(&[usize]) -> f32) {
        let data = Dataset::from_fn(dims.clone(), gen);
        let q = LinearQuantizer::new(eb, 1 << 15);
        let streams = compress(data.view(), &q).unwrap();
        let out = decompress(&dims, streams.view(), &q).unwrap();
        for (a, b) in data.values().iter().zip(out.values()) {
            assert!((a - b).abs() as f64 <= eb * (1.0 + 1e-9), "a={a} b={b} eb={eb}");
        }
    }

    #[test]
    fn round_trip_1d() {
        check_round_trip(vec![1000], 1e-3, |i| (i[0] as f32 * 0.01).sin());
    }

    #[test]
    fn round_trip_2d() {
        check_round_trip(vec![40, 50], 1e-3, |i| (i[0] as f32 * 0.1).sin() * (i[1] as f32 * 0.07).cos());
    }

    #[test]
    fn round_trip_3d() {
        check_round_trip(vec![12, 13, 14], 1e-4, |i| {
            (i[0] as f32 * 0.2).sin() + (i[1] as f32 * 0.15).cos() + i[2] as f32 * 0.01
        });
    }

    #[test]
    fn smooth_data_yields_tight_codes() {
        // Integer-valued linear data is *exactly* Lorenzo-predictable in
        // floating point, so every code is the zero bin (no quantization
        // noise feeds back into the predictions).
        let data = Dataset::from_fn(vec![64, 64], |i| (i[0] + i[1]) as f32);
        let q = LinearQuantizer::new(0.25, 1 << 15);
        let streams = compress(data.view(), &q).unwrap();
        let zero_code = 1u32 << 15;
        let zeros = streams.codes.iter().filter(|&&c| c == zero_code).count();
        // Interior points are exactly predicted; only the first row/column
        // (predicted across the domain edge) may land in nonzero bins.
        assert!(zeros >= streams.codes.len() - 2 * 64, "zeros={zeros}");
        assert!(streams.unpredictable.is_empty());
    }

    #[test]
    fn rejects_4d() {
        let data = Dataset::<f32>::constant(vec![2, 2, 2, 2], 0.0).unwrap();
        let q = LinearQuantizer::new(1e-3, 512);
        assert!(compress(data.view(), &q).is_err());
    }

    #[test]
    fn code_length_mismatch_is_detected() {
        let q = LinearQuantizer::new(1e-3, 512);
        let streams = PredictionStreams::<f32> { codes: vec![512; 5], unpredictable: vec![], side_data: vec![] };
        assert!(decompress(&[10], streams.view(), &q).is_err());
    }

    #[test]
    fn pool_length_mismatch_is_detected() {
        let q = LinearQuantizer::new(1e-3, 512);
        // One spurious unpredictable value that no code references.
        let streams = PredictionStreams::<f32> { codes: vec![512; 4], unpredictable: vec![9.0], side_data: vec![] };
        assert!(decompress(&[4], streams.view(), &q).is_err());
    }

    #[test]
    fn mean_raw_error_zero_for_linear_2d() {
        // Perfect 2-D Lorenzo prediction everywhere except the first row and
        // column (predicted from zeros outside the domain).
        let data = Dataset::from_fn(vec![32, 32], |i| (i[0] as f32) + (i[1] as f32));
        let err = mean_raw_error(&data);
        // Interior is exactly predicted; boundary contributes a bounded mean.
        assert!(err < 2.5, "err={err}");
    }

    #[test]
    fn mean_raw_error_large_for_noise() {
        let mut state = 7u64;
        let data = Dataset::from_fn(vec![64, 64], |_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32 / (1u64 << 31) as f32) * 100.0
        });
        assert!(mean_raw_error(&data) > 10.0);
    }

    use crate::predict::testutil::{bits, fuzz_dataset};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        // The fused kernels must be *bit-identical* to the scalar reference
        // on both sides: same codes, same unpredictable values, and the same
        // reconstruction (predictions feed back, so one differing bit
        // cascades and the comparison catches it).
        #[test]
        fn fused_matches_scalar_lorenzo(
            dims in prop::collection::vec(1usize..18, 1..4),
            seed in any::<u64>(),
            eb in prop_oneof![Just(1e-3f64), Just(1e-1), Just(1e-6)],
            radius in prop_oneof![Just(4u32), Just(512), Just(1u32 << 15)],
            amp in prop_oneof![Just(0.0f32), Just(0.01), Just(10.0)],
        ) {
            let data = fuzz_dataset(&dims, seed, amp);
            let q = LinearQuantizer::new(eb, radius);
            let fused = compress(data.view(), &q).unwrap();
            let (scalar, _, _) = match dims.len() {
                1 => reference::run::<f32, false>(&dims, Some(data.values()), EMPTY, &q),
                2 => reference::run2::<f32, false>(&dims, Some(data.values()), EMPTY, &q),
                _ => reference::run3::<f32, false>(&dims, Some(data.values()), EMPTY, &q),
            };
            prop_assert_eq!(&fused.codes, &scalar.codes);
            prop_assert_eq!(bits(&fused.unpredictable), bits(&scalar.unpredictable));

            let fused_out = decompress(&dims, fused.view(), &q).unwrap();
            let (_, scalar_recon, consumed) = match dims.len() {
                1 => reference::run::<f32, true>(&dims, None, fused.view(), &q),
                2 => reference::run2::<f32, true>(&dims, None, fused.view(), &q),
                _ => reference::run3::<f32, true>(&dims, None, fused.view(), &q),
            };
            prop_assert!(consumed);
            prop_assert_eq!(bits(fused_out.values()), bits(&scalar_recon));
        }
    }
}
