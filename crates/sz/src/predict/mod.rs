//! Decorrelation predictors.
//!
//! Every predictor follows the same contract: during compression it walks the
//! dataset in a deterministic order, predicts each value from *previously
//! reconstructed* values (never raw ones — this guarantees bit-exact parity
//! with the decompressor), and quantizes the prediction error. During
//! decompression it walks the same order, recovering values from codes.

pub mod interp;
pub mod lorenzo;
pub mod lorenzo2;
pub mod regression;

use crate::value::ScalarValue;

/// The two streams a predictor produces: quantization codes (one per value,
/// in walk order) and the verbatim "unpredictable" values (in walk order of
/// their occurrence, i.e. of every `code == 0`).
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionStreams<T> {
    /// One entropy-coder symbol per data point.
    pub codes: Vec<u32>,
    /// Exactly-stored values for points whose code is `0`.
    pub unpredictable: Vec<T>,
    /// Predictor-specific side data (e.g. regression coefficients), already
    /// serialized; empty for predictors without side data.
    pub side_data: Vec<u8>,
}

impl<T: ScalarValue> PredictionStreams<T> {
    /// Creates empty streams with capacity for `n` points.
    pub fn with_capacity(n: usize) -> Self {
        PredictionStreams { codes: Vec::with_capacity(n), unpredictable: Vec::new(), side_data: Vec::new() }
    }

    /// Fraction of points stored verbatim.
    pub fn unpredictable_ratio(&self) -> f64 {
        if self.codes.is_empty() {
            0.0
        } else {
            self.unpredictable.len() as f64 / self.codes.len() as f64
        }
    }

    /// Borrows the streams for decompression without copying any of them.
    pub fn view(&self) -> StreamsView<'_, T> {
        StreamsView { codes: &self.codes, unpredictable: &self.unpredictable, side_data: &self.side_data }
    }
}

/// Borrowed [`PredictionStreams`]: what a decompressor actually needs. The
/// side-data slice can point straight into the decoded chunk payload, so
/// decompression never copies side data into an owned `Vec`.
#[derive(Debug, Clone, Copy)]
pub struct StreamsView<'a, T> {
    /// One entropy-coder symbol per data point.
    pub codes: &'a [u32],
    /// Exactly-stored values for points whose code is `0`.
    pub unpredictable: &'a [T],
    /// Serialized predictor-specific side data.
    pub side_data: &'a [u8],
}

/// Sequential consumer of the unpredictable-value side channel during
/// decompression.
#[derive(Debug)]
pub(crate) struct UnpredictablePool<'a, T> {
    values: &'a [T],
    next: usize,
}

impl<'a, T: ScalarValue> UnpredictablePool<'a, T> {
    pub(crate) fn new(values: &'a [T]) -> Self {
        UnpredictablePool { values, next: 0 }
    }

    /// Takes the next verbatim value.
    ///
    /// Returns `None` if the stream is exhausted (corrupt input).
    pub(crate) fn take(&mut self) -> Option<T> {
        let v = self.values.get(self.next).copied();
        self.next += 1;
        v
    }

    /// Whether every stored value has been consumed.
    pub(crate) fn fully_consumed(&self) -> bool {
        self.next == self.values.len()
    }
}

/// Shared helpers for the fused-vs-scalar bit-equality proptests in the
/// predictor modules.
#[cfg(test)]
pub(crate) mod testutil {
    use crate::ndarray::Dataset;

    /// Mixed smooth + noise field whose roughness scales with `amp`, so some
    /// parameter draws produce unpredictable values (escape path) and others
    /// stay all-predictable.
    pub(crate) fn fuzz_dataset(dims: &[usize], seed: u64, amp: f32) -> Dataset<f32> {
        let mut state = seed | 1;
        Dataset::from_fn(dims.to_vec(), move |idx| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let noise = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
            let smooth: f32 = idx.iter().map(|&c| c as f32 * 0.13).sum::<f32>().sin();
            smooth + noise * amp
        })
    }

    /// Bit patterns for exact `f32` comparison (distinguishes `-0.0`/`+0.0`
    /// and compares NaNs structurally).
    pub(crate) fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpredictable_ratio_handles_empty() {
        let s = PredictionStreams::<f32>::with_capacity(0);
        assert_eq!(s.unpredictable_ratio(), 0.0);
    }

    #[test]
    fn pool_consumes_in_order() {
        let vals = [1.0f32, 2.0, 3.0];
        let mut pool = UnpredictablePool::new(&vals);
        assert_eq!(pool.take(), Some(1.0));
        assert_eq!(pool.take(), Some(2.0));
        assert!(!pool.fully_consumed());
        assert_eq!(pool.take(), Some(3.0));
        assert!(pool.fully_consumed());
        assert_eq!(pool.take(), None);
    }
}
