//! SZ2-style hybrid block predictor: per block, the better of a fitted
//! linear-regression plane and the Lorenzo predictor.
//!
//! The dataset is tiled into blocks (6³ in 3-D, 12² in 2-D, 128 in 1-D,
//! matching SZ2's defaults). For each block a linear model
//! `v ≈ b₀ + Σ b_d·x_d` is fitted by least squares over the raw values; the
//! block then uses whichever of {regression, Lorenzo} gives the lower mean
//! absolute raw prediction error. The choice flag and (for regression blocks)
//! the `f32`-rounded coefficients travel in the side-data channel.
//!
//! Blocks are processed in row-major block order and points in row-major
//! order within each block, so every Lorenzo neighbour is already
//! reconstructed when needed — the same parity argument as the plain Lorenzo
//! predictor.

use crate::error::SzError;
use crate::ndarray::{Dataset, DatasetView};
use crate::predict::{PredictionStreams, StreamsView, UnpredictablePool};
use crate::quantizer::LinearQuantizer;
use crate::value::ScalarValue;

/// Block edge length per rank.
fn block_edge(ndim: usize) -> usize {
    match ndim {
        1 => 128,
        2 => 12,
        _ => 6,
    }
}

const FLAG_LORENZO: u8 = 0;
const FLAG_REGRESSION: u8 = 1;

/// Compresses `data` with the hybrid regression/Lorenzo predictor.
///
/// # Errors
/// Returns [`SzError::InvalidShape`] for datasets with more than 3 dims.
pub fn compress<T: ScalarValue>(
    data: DatasetView<'_, T>,
    quantizer: &LinearQuantizer,
) -> Result<PredictionStreams<T>, SzError> {
    let ndim = data.ndim();
    if ndim > 3 {
        return Err(SzError::InvalidShape(format!("regression predictor supports 1-3 dims, got {ndim}")));
    }
    let dims = pad3(data.dims());
    let raw = data.values();
    let mut out = PredictionStreams::with_capacity(data.len());
    let mut recon = vec![T::zero(); data.len()];
    let edge = block_edge(ndim);

    for_each_block(&dims, edge, |base, bdims| {
        // Fit and round coefficients on the raw block.
        let coeffs = fit_block(raw, &dims, &base, &bdims);
        let reg_err = regression_error(raw, &dims, &base, &bdims, &coeffs);
        let lor_err = lorenzo_raw_error(raw, &dims, &base, &bdims);
        let use_reg = reg_err < lor_err;
        out.side_data.push(if use_reg { FLAG_REGRESSION } else { FLAG_LORENZO });
        if use_reg {
            for c in coeffs {
                out.side_data.extend_from_slice(&c.to_le_bytes());
            }
        }
        for_each_point(&base, &bdims, |idx| {
            let off = offset3(&dims, idx);
            let pred =
                if use_reg { predict_regression(&coeffs, &base, idx) } else { predict_lorenzo(&recon, &dims, idx) };
            let quantized = quantizer.quantize(raw[off], pred);
            if quantized.code == 0 {
                out.unpredictable.push(quantized.reconstructed);
            }
            out.codes.push(quantized.code);
            recon[off] = quantized.reconstructed;
        });
    });
    Ok(out)
}

/// Decompresses streams produced by [`compress`].
///
/// # Errors
/// Returns [`SzError::CorruptStream`] on malformed side data or stream-length
/// mismatches, [`SzError::InvalidShape`] for unsupported ranks.
pub fn decompress<T: ScalarValue>(
    dims_in: &[usize],
    streams: StreamsView<'_, T>,
    quantizer: &LinearQuantizer,
) -> Result<Dataset<T>, SzError> {
    let ndim = dims_in.len();
    if ndim > 3 {
        return Err(SzError::InvalidShape(format!("regression predictor supports 1-3 dims, got {ndim}")));
    }
    let n: usize = dims_in.iter().product();
    if streams.codes.len() != n {
        return Err(SzError::CorruptStream(format!("regression: {} codes for {n} points", streams.codes.len())));
    }
    let dims = pad3(dims_in);
    let edge = block_edge(ndim);
    let mut recon = vec![T::zero(); n];
    let mut pool = UnpredictablePool::new(streams.unpredictable);
    let mut next_code = 0usize;
    let mut side_pos = 0usize;
    let mut failure: Option<SzError> = None;

    for_each_block(&dims, edge, |base, bdims| {
        if failure.is_some() {
            return;
        }
        let Some(&flag) = streams.side_data.get(side_pos) else {
            failure = Some(SzError::CorruptStream("regression: side data exhausted".into()));
            return;
        };
        side_pos += 1;
        let coeffs = if flag == FLAG_REGRESSION {
            let need = 4 * 4;
            if side_pos + need > streams.side_data.len() {
                failure = Some(SzError::CorruptStream("regression: truncated coefficients".into()));
                return;
            }
            let mut c = [0f32; 4];
            for item in &mut c {
                let b = &streams.side_data[side_pos..side_pos + 4];
                *item = f32::from_le_bytes([b[0], b[1], b[2], b[3]]);
                side_pos += 4;
            }
            Some(c)
        } else if flag == FLAG_LORENZO {
            None
        } else {
            failure = Some(SzError::CorruptStream(format!("regression: invalid block flag {flag}")));
            return;
        };
        for_each_point(&base, &bdims, |idx| {
            if failure.is_some() {
                return;
            }
            let off = offset3(&dims, idx);
            let pred = match coeffs {
                Some(c) => predict_regression(&c, &base, idx),
                None => predict_lorenzo(&recon, &dims, idx),
            };
            let code = streams.codes[next_code];
            next_code += 1;
            recon[off] = if code == 0 {
                match pool.take() {
                    Some(v) => v,
                    None => {
                        failure = Some(SzError::CorruptStream("regression: unpredictable pool exhausted".into()));
                        T::zero()
                    }
                }
            } else {
                quantizer.recover(code, pred)
            };
        });
    });
    if let Some(e) = failure {
        return Err(e);
    }
    if !pool.fully_consumed() || side_pos != streams.side_data.len() {
        return Err(SzError::CorruptStream("regression: trailing stream data".into()));
    }
    Dataset::new(dims_in.to_vec(), recon)
}

/// Pads a 1-3 dim shape to exactly 3 dims with leading 1s, preserving
/// row-major offsets.
fn pad3(dims: &[usize]) -> [usize; 3] {
    let mut out = [1usize; 3];
    let k = 3 - dims.len();
    for (i, &d) in dims.iter().enumerate() {
        out[k + i] = d;
    }
    out
}

#[inline]
fn offset3(dims: &[usize; 3], idx: [usize; 3]) -> usize {
    (idx[0] * dims[1] + idx[1]) * dims[2] + idx[2]
}

/// Visits blocks in row-major block order.
fn for_each_block(dims: &[usize; 3], edge: usize, mut f: impl FnMut([usize; 3], [usize; 3])) {
    let mut b0 = 0;
    while b0 < dims[0] {
        let m0 = edge.min(dims[0] - b0);
        let mut b1 = 0;
        while b1 < dims[1] {
            let m1 = edge.min(dims[1] - b1);
            let mut b2 = 0;
            while b2 < dims[2] {
                let m2 = edge.min(dims[2] - b2);
                f([b0, b1, b2], [m0, m1, m2]);
                b2 += edge;
            }
            b1 += edge;
        }
        b0 += edge;
    }
}

/// Visits points of a block in row-major order (global indices).
fn for_each_point(base: &[usize; 3], bdims: &[usize; 3], mut f: impl FnMut([usize; 3])) {
    for i in 0..bdims[0] {
        for j in 0..bdims[1] {
            for k in 0..bdims[2] {
                f([base[0] + i, base[1] + j, base[2] + k]);
            }
        }
    }
}

/// Least-squares fit of `v ≈ b0 + b1·i + b2·j + b3·k` over a rectangular
/// block (local coordinates). Rectangularity decouples the dimensions, so
/// each slope is a 1-D covariance ratio. Returned coefficients are rounded
/// to `f32` (the stored precision) so compression predicts with exactly what
/// the decompressor will read.
fn fit_block<T: ScalarValue>(raw: &[T], dims: &[usize; 3], base: &[usize; 3], bdims: &[usize; 3]) -> [f32; 4] {
    let n = (bdims[0] * bdims[1] * bdims[2]) as f64;
    let mut mean_v = 0.0f64;
    for_each_point(base, bdims, |idx| {
        mean_v += raw[offset3(dims, idx)].to_f64();
    });
    mean_v /= n;

    let mut slopes = [0.0f64; 3];
    for d in 0..3 {
        let m = bdims[d] as f64;
        if bdims[d] < 2 {
            continue;
        }
        let mean_x = (m - 1.0) / 2.0;
        let var_x = (m * m - 1.0) / 12.0;
        let mut cov = 0.0f64;
        for_each_point(base, bdims, |idx| {
            let x = (idx[d] - base[d]) as f64;
            cov += (x - mean_x) * raw[offset3(dims, idx)].to_f64();
        });
        cov /= n;
        slopes[d] = cov / var_x;
    }
    let b0 = mean_v - slopes.iter().zip(bdims).map(|(s, &m)| s * (m as f64 - 1.0) / 2.0).sum::<f64>();
    [b0 as f32, slopes[0] as f32, slopes[1] as f32, slopes[2] as f32]
}

#[inline]
fn predict_regression(coeffs: &[f32; 4], base: &[usize; 3], idx: [usize; 3]) -> f64 {
    coeffs[0] as f64
        + coeffs[1] as f64 * (idx[0] - base[0]) as f64
        + coeffs[2] as f64 * (idx[1] - base[1]) as f64
        + coeffs[3] as f64 * (idx[2] - base[2]) as f64
}

#[inline]
fn predict_lorenzo<T: ScalarValue>(recon: &[T], dims: &[usize; 3], idx: [usize; 3]) -> f64 {
    let at = |i: isize, j: isize, k: isize| -> f64 {
        if i < 0 || j < 0 || k < 0 {
            0.0
        } else {
            recon[(i as usize * dims[1] + j as usize) * dims[2] + k as usize].to_f64()
        }
    };
    let (i, j, k) = (idx[0] as isize, idx[1] as isize, idx[2] as isize);
    at(i - 1, j, k) + at(i, j - 1, k) + at(i, j, k - 1)
        - at(i - 1, j - 1, k)
        - at(i - 1, j, k - 1)
        - at(i, j - 1, k - 1)
        + at(i - 1, j - 1, k - 1)
}

fn regression_error<T: ScalarValue>(
    raw: &[T],
    dims: &[usize; 3],
    base: &[usize; 3],
    bdims: &[usize; 3],
    coeffs: &[f32; 4],
) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for_each_point(base, bdims, |idx| {
        total += (raw[offset3(dims, idx)].to_f64() - predict_regression(coeffs, base, idx)).abs();
        count += 1;
    });
    total / count as f64
}

/// Lorenzo selection heuristic over raw values (matches SZ2's sampling-based
/// block selection; deterministic, so it needs no extra stream data).
fn lorenzo_raw_error<T: ScalarValue>(raw: &[T], dims: &[usize; 3], base: &[usize; 3], bdims: &[usize; 3]) -> f64 {
    let at = |i: isize, j: isize, k: isize| -> f64 {
        if i < 0 || j < 0 || k < 0 {
            0.0
        } else {
            raw[(i as usize * dims[1] + j as usize) * dims[2] + k as usize].to_f64()
        }
    };
    let mut total = 0.0;
    let mut count = 0usize;
    for_each_point(base, bdims, |idx| {
        let (i, j, k) = (idx[0] as isize, idx[1] as isize, idx[2] as isize);
        let pred = at(i - 1, j, k) + at(i, j - 1, k) + at(i, j, k - 1)
            - at(i - 1, j - 1, k)
            - at(i - 1, j, k - 1)
            - at(i, j - 1, k - 1)
            + at(i - 1, j - 1, k - 1);
        total += (at(i, j, k) - pred).abs();
        count += 1;
    });
    total / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_round_trip(dims: Vec<usize>, eb: f64, gen: impl FnMut(&[usize]) -> f32) {
        let data = Dataset::from_fn(dims.clone(), gen);
        let q = LinearQuantizer::new(eb, 1 << 15);
        let streams = compress(data.view(), &q).unwrap();
        let out = decompress(&dims, streams.view(), &q).unwrap();
        for (a, b) in data.values().iter().zip(out.values()) {
            assert!((a - b).abs() as f64 <= eb * (1.0 + 1e-9), "a={a} b={b}");
        }
    }

    #[test]
    fn round_trip_1d() {
        check_round_trip(vec![500], 1e-3, |i| (i[0] as f32 * 0.02).sin() * 3.0);
    }

    #[test]
    fn round_trip_2d() {
        check_round_trip(vec![50, 37], 1e-3, |i| i[0] as f32 * 0.5 - i[1] as f32 * 0.25);
    }

    #[test]
    fn round_trip_3d() {
        check_round_trip(vec![13, 14, 15], 1e-4, |i| (i[0] as f32 * 0.7).sin() + (i[1] as f32 + i[2] as f32) * 0.05);
    }

    #[test]
    fn planar_data_selects_regression_and_nails_it() {
        // A global plane: regression predicts every interior point almost
        // exactly, so nearly every code is the zero bin.
        let data =
            Dataset::from_fn(vec![24, 24, 24], |i| 1.0 + 0.5 * i[0] as f32 + 0.25 * i[1] as f32 - 0.125 * i[2] as f32);
        let q = LinearQuantizer::new(1e-3, 1 << 15);
        let streams = compress(data.view(), &q).unwrap();
        let zero = 1u32 << 15;
        let zero_frac = streams.codes.iter().filter(|&&c| c == zero).count() as f64 / streams.codes.len() as f64;
        assert!(zero_frac > 0.98, "zero_frac={zero_frac}");
        // At least one block chose regression.
        assert!(streams.side_data.contains(&FLAG_REGRESSION));
    }

    #[test]
    fn blocky_smooth_data_round_trips_at_loose_bound() {
        check_round_trip(vec![20, 20, 20], 0.5, |i| ((i[0] * i[1] + i[2]) as f32 * 0.01).sin() * 10.0);
    }

    #[test]
    fn corrupt_flag_rejected() {
        let data = Dataset::from_fn(vec![8, 8], |i| (i[0] + i[1]) as f32);
        let q = LinearQuantizer::new(1e-3, 1 << 15);
        let mut streams = compress(data.view(), &q).unwrap();
        streams.side_data[0] = 7;
        assert!(decompress(&[8, 8], streams.view(), &q).is_err());
    }

    #[test]
    fn truncated_side_data_rejected() {
        let data = Dataset::from_fn(vec![30, 30], |i| (i[0] as f32 * 0.4).sin() + i[1] as f32);
        let q = LinearQuantizer::new(1e-3, 1 << 15);
        let mut streams = compress(data.view(), &q).unwrap();
        streams.side_data.truncate(1);
        assert!(decompress(&[30, 30], streams.view(), &q).is_err());
    }

    #[test]
    fn rejects_rank_4() {
        let data = Dataset::<f32>::constant(vec![2, 2, 2, 2], 0.0).unwrap();
        let q = LinearQuantizer::new(1e-3, 512);
        assert!(compress(data.view(), &q).is_err());
    }

    #[test]
    fn pad3_preserves_offsets() {
        assert_eq!(pad3(&[5]), [1, 1, 5]);
        assert_eq!(pad3(&[4, 5]), [1, 4, 5]);
        assert_eq!(pad3(&[3, 4, 5]), [3, 4, 5]);
    }

    #[test]
    fn fit_block_recovers_plane_coefficients() {
        let dims = [1usize, 8, 8];
        let raw: Vec<f32> = (0..64)
            .map(|o| {
                let j = o / 8;
                let k = o % 8;
                2.0 + 0.5 * j as f32 + 0.25 * k as f32
            })
            .collect();
        let c = fit_block(&raw, &dims, &[0, 0, 0], &[1, 8, 8]);
        assert!((c[0] - 2.0).abs() < 1e-5, "{c:?}");
        assert!((c[2] - 0.5).abs() < 1e-5, "{c:?}");
        assert!((c[3] - 0.25).abs() < 1e-5, "{c:?}");
    }
}
