//! SZ3-style multilevel spline-interpolation predictor.
//!
//! The dataset is refined level by level: starting from the single origin
//! point, each level halves the grid stride and predicts the new points by
//! 1-D interpolation along one dimension at a time, using already
//! reconstructed neighbours at the current stride (linear `(a+b)/2` or cubic
//! `(−a₃ + 9a₁ + 9b₁ − b₃)/16` basis). This is the algorithm behind SZ3's
//! default "SZ-interp" compressor [Zhao et al., ICDE 2021], which the paper
//! adopts for its highest compression ratios.
//!
//! The compressor and decompressor walk an identical deterministic schedule,
//! and predictions read only reconstructed values, guaranteeing parity.

use crate::error::SzError;
use crate::ndarray::{Dataset, DatasetView};
use crate::predict::{PredictionStreams, StreamsView, UnpredictablePool};
use crate::quantizer::LinearQuantizer;
use crate::value::ScalarValue;

/// Interpolation basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Basis {
    /// Two-point average.
    Linear,
    /// Four-point Catmull-Rom-style cubic; falls back to linear near edges.
    Cubic,
}

/// Compresses `data` with multilevel interpolation.
///
/// # Errors
/// Returns [`SzError::InvalidShape`] for datasets with more than 3 dims.
pub fn compress<T: ScalarValue>(
    data: DatasetView<'_, T>,
    quantizer: &LinearQuantizer,
    basis: Basis,
) -> Result<PredictionStreams<T>, SzError> {
    if data.ndim() > 3 {
        return Err(SzError::InvalidShape(format!("interpolation predictor supports 1-3 dims, got {}", data.ndim())));
    }
    let mut out = PredictionStreams::with_capacity(data.len());
    let mut recon = vec![T::zero(); data.len()];
    let raw = data.values();
    walk_schedule(
        data.dims(),
        basis,
        |off, pred, recon_buf: &mut [T]| {
            let quantized = quantizer.quantize(raw[off], pred);
            if quantized.code == 0 {
                out.unpredictable.push(quantized.reconstructed);
            }
            out.codes.push(quantized.code);
            recon_buf[off] = quantized.reconstructed;
        },
        &mut recon,
    );
    Ok(out)
}

/// Decompresses streams produced by [`compress`] with the same basis.
///
/// # Errors
/// Returns [`SzError::CorruptStream`] on inconsistent stream lengths, and
/// [`SzError::InvalidShape`] for unsupported ranks.
pub fn decompress<T: ScalarValue>(
    dims: &[usize],
    streams: StreamsView<'_, T>,
    quantizer: &LinearQuantizer,
    basis: Basis,
) -> Result<Dataset<T>, SzError> {
    if dims.len() > 3 {
        return Err(SzError::InvalidShape(format!("interpolation predictor supports 1-3 dims, got {}", dims.len())));
    }
    let n: usize = dims.iter().product();
    if streams.codes.len() != n {
        return Err(SzError::CorruptStream(format!("interp: {} codes for {n} points", streams.codes.len())));
    }
    let mut recon = vec![T::zero(); n];
    let mut pool = UnpredictablePool::new(streams.unpredictable);
    let mut next_code = 0usize;
    let mut short_pool = false;
    walk_schedule(
        dims,
        basis,
        |off, pred, recon_buf: &mut [T]| {
            let code = streams.codes[next_code];
            next_code += 1;
            recon_buf[off] = if code == 0 {
                match pool.take() {
                    Some(v) => v,
                    None => {
                        short_pool = true;
                        T::zero()
                    }
                }
            } else {
                quantizer.recover(code, pred)
            };
        },
        &mut recon,
    );
    if short_pool || !pool.fully_consumed() {
        return Err(SzError::CorruptStream("interp: unpredictable pool length mismatch".into()));
    }
    Dataset::new(dims.to_vec(), recon)
}

/// Drives the shared compress/decompress traversal. For every point in
/// schedule order, computes the interpolation prediction from `recon` and
/// invokes `visit(offset, prediction, recon)`.
fn walk_schedule<T: ScalarValue>(
    dims: &[usize],
    basis: Basis,
    mut visit: impl FnMut(usize, f64, &mut [T]),
    recon: &mut [T],
) {
    let ndim = dims.len();
    let max_dim = dims.iter().copied().max().expect("validated nonempty");
    // Smallest power of two covering the largest dimension.
    let mut top_stride = 1usize;
    while top_stride < max_dim {
        top_stride *= 2;
    }
    // Strides (element counts) per dimension for offset computation.
    let mut elem_stride = vec![1usize; ndim];
    for d in (0..ndim.saturating_sub(1)).rev() {
        elem_stride[d] = elem_stride[d + 1] * dims[d + 1];
    }

    // Origin: predicted as zero.
    visit(0, 0.0, recon);

    let mut s = top_stride;
    while s >= 1 {
        if s < max_dim {
            for pass_dim in 0..ndim {
                walk_pass(dims, &elem_stride, s, pass_dim, basis, &mut visit, recon);
            }
        }
        if s == 1 {
            break;
        }
        s /= 2;
    }
}

/// One interpolation pass: fills points whose `pass_dim` coordinate is an odd
/// multiple of `s`, with earlier dims on the `s` grid and later dims on the
/// `2s` grid.
fn walk_pass<T: ScalarValue>(
    dims: &[usize],
    elem_stride: &[usize],
    s: usize,
    pass_dim: usize,
    basis: Basis,
    visit: &mut impl FnMut(usize, f64, &mut [T]),
    recon: &mut [T],
) {
    let ndim = dims.len();
    // Per-dimension coordinate step and start, precomputed: the pass dim
    // fills odd multiples of `s` (start `s`, step `2s`); earlier dims sit on
    // the refined `s` grid, later dims still on the coarse `2s` grid.
    let step: Vec<usize> = (0..ndim).map(|d| if d < pass_dim { s } else { 2 * s }).collect();
    let start: Vec<usize> = (0..ndim).map(|d| if d == pass_dim { s } else { 0 }).collect();

    let mut coord: Vec<usize> = start.clone();
    if coord.iter().zip(dims).any(|(&c, &n)| c >= n) {
        return;
    }
    let dim_len = dims[pass_dim];
    let estride = elem_stride[pass_dim];
    let near = s * estride;
    let far = 3 * s * estride;
    // The point offset is maintained incrementally across odometer steps
    // (exact integer arithmetic); the reference recomputed the coord·stride
    // dot product per point, which dominated the schedule walk.
    let mut off: usize = coord.iter().zip(elem_stride).map(|(&c, &es)| c * es).sum();
    loop {
        let c = coord[pass_dim];
        let a1 = recon[off - near].to_f64(); // c-s always >= 0
        let pred = if c + s < dim_len {
            let b1 = recon[off + near].to_f64();
            match basis {
                Basis::Linear => 0.5 * (a1 + b1),
                Basis::Cubic => {
                    if c >= 3 * s && c + 3 * s < dim_len {
                        let a3 = recon[off - far].to_f64();
                        let b3 = recon[off + far].to_f64();
                        (-a3 + 9.0 * a1 + 9.0 * b1 - b3) / 16.0
                    } else {
                        0.5 * (a1 + b1)
                    }
                }
            }
        } else {
            a1 // right neighbour out of bounds: copy-left
        };
        visit(off, pred, recon);

        // Odometer increment, fastest on the last dimension.
        let mut d = ndim;
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            coord[d] += step[d];
            if coord[d] < dims[d] {
                off += step[d] * elem_stride[d];
                break;
            }
            off -= (coord[d] - step[d] - start[d]) * elem_stride[d];
            coord[d] = start[d];
        }
    }
}

/// The pre-fusion pass walk (per-point offset recompute), kept verbatim as
/// the bit-equality oracle for [`walk_pass`].
#[cfg(test)]
mod reference {
    use super::*;

    pub(super) fn walk_schedule<T: ScalarValue>(
        dims: &[usize],
        basis: Basis,
        mut visit: impl FnMut(usize, f64, &mut [T]),
        recon: &mut [T],
    ) {
        let ndim = dims.len();
        let max_dim = dims.iter().copied().max().expect("validated nonempty");
        let mut top_stride = 1usize;
        while top_stride < max_dim {
            top_stride *= 2;
        }
        let mut elem_stride = vec![1usize; ndim];
        for d in (0..ndim.saturating_sub(1)).rev() {
            elem_stride[d] = elem_stride[d + 1] * dims[d + 1];
        }
        visit(0, 0.0, recon);
        let mut s = top_stride;
        while s >= 1 {
            if s < max_dim {
                for pass_dim in 0..ndim {
                    walk_pass(dims, &elem_stride, s, pass_dim, basis, &mut visit, recon);
                }
            }
            if s == 1 {
                break;
            }
            s /= 2;
        }
    }

    fn walk_pass<T: ScalarValue>(
        dims: &[usize],
        elem_stride: &[usize],
        s: usize,
        pass_dim: usize,
        basis: Basis,
        visit: &mut impl FnMut(usize, f64, &mut [T]),
        recon: &mut [T],
    ) {
        let ndim = dims.len();
        let step = |d: usize| -> usize {
            if d == pass_dim {
                2 * s
            } else if d < pass_dim {
                s
            } else {
                2 * s
            }
        };
        let start = |d: usize| -> usize {
            if d == pass_dim {
                s
            } else {
                0
            }
        };
        let mut coord: Vec<usize> = (0..ndim).map(start).collect();
        if coord.iter().zip(dims).any(|(&c, &n)| c >= n) {
            return;
        }
        let dim_len = dims[pass_dim];
        let estride = elem_stride[pass_dim];
        loop {
            let off: usize = coord.iter().zip(elem_stride).map(|(&c, &es)| c * es).sum();
            let c = coord[pass_dim];
            let a1 = recon[off - s * estride].to_f64();
            let pred = if c + s < dim_len {
                let b1 = recon[off + s * estride].to_f64();
                match basis {
                    Basis::Linear => 0.5 * (a1 + b1),
                    Basis::Cubic => {
                        if c >= 3 * s && c + 3 * s < dim_len {
                            let a3 = recon[off - 3 * s * estride].to_f64();
                            let b3 = recon[off + 3 * s * estride].to_f64();
                            (-a3 + 9.0 * a1 + 9.0 * b1 - b3) / 16.0
                        } else {
                            0.5 * (a1 + b1)
                        }
                    }
                }
            } else {
                a1
            };
            visit(off, pred, recon);
            let mut d = ndim;
            loop {
                if d == 0 {
                    return;
                }
                d -= 1;
                coord[d] += step(d);
                if coord[d] < dims[d] {
                    break;
                }
                coord[d] = start(d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_round_trip(dims: Vec<usize>, eb: f64, basis: Basis, gen: impl FnMut(&[usize]) -> f32) {
        let data = Dataset::from_fn(dims.clone(), gen);
        let q = LinearQuantizer::new(eb, 1 << 15);
        let streams = compress(data.view(), &q, basis).unwrap();
        assert_eq!(streams.codes.len(), data.len(), "schedule must visit every point once");
        let out = decompress(&dims, streams.view(), &q, basis).unwrap();
        for (a, b) in data.values().iter().zip(out.values()) {
            assert!((a - b).abs() as f64 <= eb * (1.0 + 1e-9), "a={a} b={b} eb={eb}");
        }
    }

    #[test]
    fn round_trip_1d_linear() {
        check_round_trip(vec![777], 1e-3, Basis::Linear, |i| (i[0] as f32 * 0.013).sin());
    }

    #[test]
    fn round_trip_1d_cubic() {
        check_round_trip(vec![1024], 1e-4, Basis::Cubic, |i| (i[0] as f32 * 0.013).sin());
    }

    #[test]
    fn round_trip_2d_cubic_non_pow2() {
        check_round_trip(vec![37, 53], 1e-3, Basis::Cubic, |i| {
            ((i[0] as f32) * 0.21).sin() * ((i[1] as f32) * 0.17).cos()
        });
    }

    #[test]
    fn round_trip_3d_both_bases() {
        for basis in [Basis::Linear, Basis::Cubic] {
            check_round_trip(vec![17, 23, 9], 1e-3, basis, |i| {
                (i[0] as f32 * 0.3).sin() + (i[1] as f32 * 0.2).cos() * (i[2] as f32 * 0.4).sin()
            });
        }
    }

    #[test]
    fn round_trip_degenerate_dims() {
        check_round_trip(vec![1], 1e-3, Basis::Cubic, |_| 5.0);
        check_round_trip(vec![1, 64], 1e-3, Basis::Cubic, |i| i[1] as f32 * 0.5);
        check_round_trip(vec![2, 2, 2], 1e-3, Basis::Linear, |i| (i[0] + i[1] + i[2]) as f32);
    }

    #[test]
    fn smooth_data_beats_lorenzo_on_ratio_proxy() {
        // On a smooth field at a moderate error bound, interpolation should
        // produce a tighter code distribution (more zero-bins) than Lorenzo.
        let data =
            Dataset::from_fn(vec![64, 64], |i| ((i[0] as f32) * 0.05).sin() * ((i[1] as f32) * 0.08).cos() * 50.0);
        let q = LinearQuantizer::new(0.05, 1 << 15);
        let zero = 1u32 << 15;
        let interp = compress(data.view(), &q, Basis::Cubic).unwrap();
        let lorenzo = crate::predict::lorenzo::compress(data.view(), &q).unwrap();
        let zc = |codes: &[u32]| codes.iter().filter(|&&c| c == zero).count();
        assert!(zc(&interp.codes) >= zc(&lorenzo.codes));
    }

    #[test]
    fn rejects_rank_4() {
        let data = Dataset::<f32>::constant(vec![2, 2, 2, 2], 1.0).unwrap();
        let q = LinearQuantizer::new(1e-3, 512);
        assert!(compress(data.view(), &q, Basis::Cubic).is_err());
    }

    #[test]
    fn corrupt_code_count_detected() {
        let q = LinearQuantizer::new(1e-3, 512);
        let streams = PredictionStreams::<f32> { codes: vec![512; 3], unpredictable: vec![], side_data: vec![] };
        assert!(decompress(&[8], streams.view(), &q, Basis::Linear).is_err());
    }

    #[test]
    fn pool_mismatch_detected() {
        let data = Dataset::from_fn(vec![16], |i| i[0] as f32);
        let q = LinearQuantizer::new(1e-3, 1 << 15);
        let mut streams = compress(data.view(), &q, Basis::Linear).unwrap();
        streams.unpredictable.push(42.0);
        assert!(decompress(&[16], streams.view(), &q, Basis::Linear).is_err());
    }

    use crate::predict::testutil::{bits, fuzz_dataset};
    use crate::predict::UnpredictablePool;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        // The incremental-offset pass walk must visit the same points with
        // the same predictions as the reference walk, bit for bit.
        #[test]
        fn fused_matches_scalar(
            dims in prop::collection::vec(1usize..18, 1..4),
            seed in any::<u64>(),
            basis in prop_oneof![Just(Basis::Linear), Just(Basis::Cubic)],
            eb in prop_oneof![Just(1e-3f64), Just(1e-1), Just(1e-6)],
            radius in prop_oneof![Just(4u32), Just(512), Just(1u32 << 15)],
            amp in prop_oneof![Just(0.0f32), Just(0.01), Just(10.0)],
        ) {
            let data = fuzz_dataset(&dims, seed, amp);
            let q = LinearQuantizer::new(eb, radius);
            let fused = compress(data.view(), &q, basis).unwrap();

            let n = data.len();
            let raw = data.values();
            let mut scalar = PredictionStreams::<f32>::with_capacity(n);
            let mut recon_ref = vec![0f32; n];
            reference::walk_schedule(&dims, basis, |off, pred, recon_buf: &mut [f32]| {
                let quantized = q.quantize(raw[off], pred);
                if quantized.code == 0 {
                    scalar.unpredictable.push(quantized.reconstructed);
                }
                scalar.codes.push(quantized.code);
                recon_buf[off] = quantized.reconstructed;
            }, &mut recon_ref);
            prop_assert_eq!(&fused.codes, &scalar.codes);
            prop_assert_eq!(bits(&fused.unpredictable), bits(&scalar.unpredictable));

            let fused_out = decompress(&dims, fused.view(), &q, basis).unwrap();
            let mut pool = UnpredictablePool::new(fused.unpredictable.as_slice());
            let mut next = 0usize;
            let mut recon_dec = vec![0f32; n];
            reference::walk_schedule(&dims, basis, |off, pred, recon_buf: &mut [f32]| {
                let code = fused.codes[next];
                next += 1;
                recon_buf[off] =
                    if code == 0 { pool.take().expect("pool length verified by encode") } else { q.recover(code, pred) };
            }, &mut recon_dec);
            prop_assert_eq!(bits(fused_out.values()), bits(&recon_dec));
        }
    }
}
