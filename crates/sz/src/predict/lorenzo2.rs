//! Second-order Lorenzo predictor.
//!
//! Extends the first-order Lorenzo stencil one layer deeper: the prediction
//! is `f − Π_d (1 − S_d)²` applied to the reconstructed neighbourhood, where
//! `S_d` shifts by one along dimension `d` — quadratic extrapolation per
//! axis (1-D: `2f(i−1) − f(i−2)`). Second-order Lorenzo captures linear
//! *gradients* exactly, which first-order Lorenzo does not, at the cost of a
//! wider stencil and more noise amplification (the reason SZ selects between
//! orders per dataset).

use crate::error::SzError;
use crate::ndarray::{Dataset, DatasetView};
use crate::predict::{PredictionStreams, StreamsView, UnpredictablePool};
use crate::quantizer::LinearQuantizer;
use crate::value::ScalarValue;

/// Per-dimension shift polynomial of `(1 − S)²`: coefficients of `S^0..S^2`.
const POLY: [f64; 3] = [1.0, -2.0, 1.0];

/// Stencil weights for rank `ndim`: `(offsets, weight)` pairs for every
/// nonzero multi-offset in `{0,1,2}^ndim` except the origin, with weight
/// `−Π p[a_d]`.
fn stencil(ndim: usize) -> Vec<(Vec<usize>, f64)> {
    let mut out = Vec::new();
    let count = 3usize.pow(ndim as u32);
    for code in 1..count {
        let mut rem = code;
        let mut offsets = Vec::with_capacity(ndim);
        let mut w = 1.0;
        for _ in 0..ndim {
            let a = rem % 3;
            rem /= 3;
            offsets.push(a);
            w *= POLY[a];
        }
        out.push((offsets, -w));
    }
    out
}

/// Compresses `data` with the second-order Lorenzo predictor.
///
/// # Errors
/// Returns [`SzError::InvalidShape`] for datasets with more than 3 dims.
pub fn compress<T: ScalarValue>(
    data: DatasetView<'_, T>,
    quantizer: &LinearQuantizer,
) -> Result<PredictionStreams<T>, SzError> {
    if data.ndim() > 3 {
        return Err(SzError::InvalidShape(format!("lorenzo2 predictor supports 1-3 dims, got {}", data.ndim())));
    }
    let mut out = PredictionStreams::with_capacity(data.len());
    let mut recon = vec![T::zero(); data.len()];
    let raw = data.values();
    walk(data.dims(), &mut recon, |off, pred, recon_buf| {
        let quantized = quantizer.quantize(raw[off], pred);
        if quantized.code == 0 {
            out.unpredictable.push(quantized.reconstructed);
        }
        out.codes.push(quantized.code);
        recon_buf[off] = quantized.reconstructed;
    });
    Ok(out)
}

/// Decompresses streams produced by [`compress`].
///
/// # Errors
/// Returns [`SzError::CorruptStream`] on inconsistent stream lengths, and
/// [`SzError::InvalidShape`] for unsupported ranks.
pub fn decompress<T: ScalarValue>(
    dims: &[usize],
    streams: StreamsView<'_, T>,
    quantizer: &LinearQuantizer,
) -> Result<Dataset<T>, SzError> {
    if dims.len() > 3 {
        return Err(SzError::InvalidShape(format!("lorenzo2 predictor supports 1-3 dims, got {}", dims.len())));
    }
    let n: usize = dims.iter().product();
    if streams.codes.len() != n {
        return Err(SzError::CorruptStream(format!("lorenzo2: {} codes for {n} points", streams.codes.len())));
    }
    let mut recon = vec![T::zero(); n];
    let mut pool = UnpredictablePool::new(streams.unpredictable);
    let mut next_code = 0usize;
    let mut short_pool = false;
    walk(dims, &mut recon, |off, pred, recon_buf| {
        let code = streams.codes[next_code];
        next_code += 1;
        recon_buf[off] = if code == 0 {
            match pool.take() {
                Some(v) => v,
                None => {
                    short_pool = true;
                    T::zero()
                }
            }
        } else {
            quantizer.recover(code, pred)
        };
    });
    if short_pool || !pool.fully_consumed() {
        return Err(SzError::CorruptStream("lorenzo2: unpredictable pool length mismatch".into()));
    }
    Dataset::new(dims.to_vec(), recon)
}

/// Row-major walk computing the second-order prediction from reconstructed
/// values (out-of-domain neighbours read as 0, as in first-order Lorenzo).
///
/// Fused fast path: away from the leading borders (every coordinate ≥ 2, the
/// widest stencil offset) all stencil terms are in-domain, so the prediction
/// reduces to a dot product against precomputed flat offsets — no per-term
/// domain checks and no per-term offset decomposition. Terms accumulate in
/// stencil enumeration order either way, keeping the sum bit-identical to
/// the checked path (pinned by the `fused_matches_scalar` proptest against
/// `reference::walk`).
fn walk<T: ScalarValue>(dims: &[usize], recon: &mut [T], mut visit: impl FnMut(usize, f64, &mut [T])) {
    let ndim = dims.len();
    let weights = stencil(ndim);
    let mut elem_stride = vec![1usize; ndim];
    for d in (0..ndim.saturating_sub(1)).rev() {
        elem_stride[d] = elem_stride[d + 1] * dims[d + 1];
    }
    let terms: Vec<(usize, f64)> =
        weights.iter().map(|(offsets, w)| (offsets.iter().zip(&elem_stride).map(|(o, s)| o * s).sum(), *w)).collect();
    let n: usize = dims.iter().product();
    let mut idx = vec![0usize; ndim];
    for off in 0..n {
        let mut pred = 0.0f64;
        if idx.iter().all(|&i| i >= 2) {
            for &(doff, w) in &terms {
                pred += w * recon[off - doff].to_f64();
            }
        } else {
            'stencil: for (offsets, w) in &weights {
                let mut noff = off;
                for d in 0..ndim {
                    if idx[d] < offsets[d] {
                        continue 'stencil; // neighbour outside the domain → 0
                    }
                    noff -= offsets[d] * elem_stride[d];
                }
                pred += w * recon[noff].to_f64();
            }
        }
        visit(off, pred, recon);
        for d in (0..ndim).rev() {
            idx[d] += 1;
            if idx[d] < dims[d] {
                break;
            }
            idx[d] = 0;
        }
    }
}

/// The pre-fusion walk, kept verbatim as the bit-equality oracle for the
/// fused fast path in [`walk`].
#[cfg(test)]
mod reference {
    use super::*;

    pub(super) fn walk<T: ScalarValue>(dims: &[usize], recon: &mut [T], mut visit: impl FnMut(usize, f64, &mut [T])) {
        let ndim = dims.len();
        let weights = stencil(ndim);
        let mut elem_stride = vec![1usize; ndim];
        for d in (0..ndim.saturating_sub(1)).rev() {
            elem_stride[d] = elem_stride[d + 1] * dims[d + 1];
        }
        let n: usize = dims.iter().product();
        let mut idx = vec![0usize; ndim];
        for off in 0..n {
            let mut pred = 0.0f64;
            'stencil: for (offsets, w) in &weights {
                let mut noff = off;
                for d in 0..ndim {
                    if idx[d] < offsets[d] {
                        continue 'stencil; // neighbour outside the domain → 0
                    }
                    noff -= offsets[d] * elem_stride[d];
                }
                pred += w * recon[noff].to_f64();
            }
            visit(off, pred, recon);
            for d in (0..ndim).rev() {
                idx[d] += 1;
                if idx[d] < dims[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_round_trip(dims: Vec<usize>, eb: f64, gen: impl FnMut(&[usize]) -> f32) {
        let data = Dataset::from_fn(dims.clone(), gen);
        let q = LinearQuantizer::new(eb, 1 << 15);
        let streams = compress(data.view(), &q).unwrap();
        let out = decompress(&dims, streams.view(), &q).unwrap();
        for (a, b) in data.values().iter().zip(out.values()) {
            assert!((a - b).abs() as f64 <= eb * (1.0 + 1e-9), "a={a} b={b}");
        }
    }

    #[test]
    fn round_trips_all_ranks() {
        check_round_trip(vec![400], 1e-3, |i| (i[0] as f32 * 0.05).sin());
        check_round_trip(vec![30, 40], 1e-3, |i| (i[0] as f32 * 0.2).cos() * i[1] as f32 * 0.1);
        check_round_trip(vec![10, 12, 14], 1e-4, |i| ((i[0] + i[1] * 2 + i[2]) as f32 * 0.1).sin());
    }

    #[test]
    fn stencil_weights_sum_to_one() {
        // Applying the stencil to a constant field must reproduce it.
        for ndim in 1..=3 {
            let total: f64 = stencil(ndim).iter().map(|(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-12, "ndim {ndim}: sum {total}");
        }
    }

    #[test]
    fn captures_gradients_exactly() {
        // A linear ramp is exactly predicted by second-order Lorenzo at
        // every interior point (quadratic extrapolation of a line is exact),
        // including the first row/column where first-order Lorenzo errs.
        let data = Dataset::from_fn(vec![32, 32], |i| 3.0 * i[0] as f32 + 2.0 * i[1] as f32 + 5.0);
        let q = LinearQuantizer::new(0.25, 1 << 15);
        let streams = compress(data.view(), &q).unwrap();
        let zero = 1u32 << 15;
        // Interior (i,j >= 2): exact prediction.
        let interior_nonzero = streams
            .codes
            .iter()
            .enumerate()
            .filter(|&(off, &c)| {
                let (i, j) = (off / 32, off % 32);
                i >= 2 && j >= 2 && c != zero
            })
            .count();
        assert_eq!(interior_nonzero, 0, "interior of a plane must be exactly predicted");
    }

    #[test]
    fn one_d_stencil_is_quadratic_extrapolation() {
        let s = stencil(1);
        assert_eq!(s.len(), 2);
        let w1 = s.iter().find(|(o, _)| o == &vec![1]).expect("offset 1").1;
        let w2 = s.iter().find(|(o, _)| o == &vec![2]).expect("offset 2").1;
        assert_eq!(w1, 2.0);
        assert_eq!(w2, -1.0);
    }

    #[test]
    fn corrupt_streams_detected() {
        let q = LinearQuantizer::new(1e-3, 512);
        let streams = PredictionStreams::<f32> { codes: vec![512; 3], unpredictable: vec![], side_data: vec![] };
        assert!(decompress(&[8], streams.view(), &q).is_err());
        let data = Dataset::from_fn(vec![16], |i| i[0] as f32);
        let mut ok = compress(data.view(), &LinearQuantizer::new(1e-3, 1 << 15)).unwrap();
        ok.unpredictable.push(1.0);
        assert!(decompress(&[16], ok.view(), &LinearQuantizer::new(1e-3, 1 << 15)).is_err());
    }

    use crate::predict::testutil::{bits, fuzz_dataset};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        // The interior fast path in `walk` must be bit-identical to the
        // checked reference walk on both encode and decode.
        #[test]
        fn fused_matches_scalar(
            dims in prop::collection::vec(1usize..14, 1..4),
            seed in any::<u64>(),
            eb in prop_oneof![Just(1e-3f64), Just(1e-1), Just(1e-6)],
            radius in prop_oneof![Just(4u32), Just(512), Just(1u32 << 15)],
            amp in prop_oneof![Just(0.0f32), Just(0.01), Just(10.0)],
        ) {
            let data = fuzz_dataset(&dims, seed, amp);
            let q = LinearQuantizer::new(eb, radius);
            let fused = compress(data.view(), &q).unwrap();

            let n = data.len();
            let raw = data.values();
            let mut scalar = PredictionStreams::<f32>::with_capacity(n);
            let mut recon_ref = vec![0f32; n];
            reference::walk(&dims, &mut recon_ref, |off, pred, recon_buf| {
                let quantized = q.quantize(raw[off], pred);
                if quantized.code == 0 {
                    scalar.unpredictable.push(quantized.reconstructed);
                }
                scalar.codes.push(quantized.code);
                recon_buf[off] = quantized.reconstructed;
            });
            prop_assert_eq!(&fused.codes, &scalar.codes);
            prop_assert_eq!(bits(&fused.unpredictable), bits(&scalar.unpredictable));

            let fused_out = decompress(&dims, fused.view(), &q).unwrap();
            let mut pool = UnpredictablePool::new(fused.unpredictable.as_slice());
            let mut next = 0usize;
            let mut recon_dec = vec![0f32; n];
            reference::walk(&dims, &mut recon_dec, |off, pred, recon_buf| {
                let code = fused.codes[next];
                next += 1;
                recon_buf[off] =
                    if code == 0 { pool.take().expect("pool length verified by encode") } else { q.recover(code, pred) };
            });
            prop_assert_eq!(bits(fused_out.values()), bits(&recon_dec));
        }
    }
}
