//! Deterministic compression-work model.
//!
//! End-to-end experiments need per-dataset compression/decompression *times
//! on the paper's machines*, which cannot be measured here (and wall-clock
//! measurements would make every experiment non-reproducible). Instead, time
//! is modelled as work proportional to the data size with coefficients that
//! depend on what the compressor actually does per point: prediction,
//! quantization, entropy coding (cost grows with the quantization-bin
//! entropy — more distinct symbols mean deeper Huffman codes and worse
//! branch behaviour, the effect behind the paper's Fig 4), and verbatim
//! copies for unpredictable points.
//!
//! Coefficients are calibrated against the paper's Table V single-core
//! timings on the Bebop KNL partition (CESM 1800×3600 ≈ 1.5 s, RTM
//! 449×449×235 ≈ 13 s, Nyx 512³ ≈ 35 s); a per-machine speed factor scales
//! them elsewhere. Criterion benches measure the *real* Rust implementation
//! separately — the model is for simulated clusters only.

use crate::config::PredictorKind;
use crate::stats::QuantBinStats;

/// Reference per-point costs, in microseconds on one Bebop-KNL-class core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed per-point cost: load, quantize, store.
    pub base_us: f64,
    /// Additional per-point cost per bit of quantization entropy.
    pub entropy_us: f64,
    /// Additional per-point cost for an unpredictable (verbatim) point.
    pub unpredictable_us: f64,
    /// Predictor-specific per-point multiplier.
    pub predictor_factor: f64,
    /// Decompression cost as a fraction of compression cost (decoding skips
    /// the split search / fitting work).
    pub decompress_fraction: f64,
}

impl CostModel {
    /// Calibrated model for a predictor (see module docs).
    pub fn for_predictor(predictor: PredictorKind) -> Self {
        let predictor_factor = match predictor {
            PredictorKind::Lorenzo => 1.0,
            PredictorKind::Lorenzo2 => 1.1,
            PredictorKind::Regression => 1.25,
            PredictorKind::InterpLinear => 1.05,
            PredictorKind::InterpCubic => 1.15,
        };
        CostModel {
            base_us: 0.21,
            entropy_us: 0.030,
            unpredictable_us: 0.45,
            predictor_factor,
            decompress_fraction: 0.45,
        }
    }

    /// Single-core compression time in seconds for `n_points` with the given
    /// bin statistics.
    pub fn compression_seconds(&self, n_points: usize, stats: &QuantBinStats) -> f64 {
        let per_point =
            (self.base_us + self.entropy_us * stats.quant_entropy + self.unpredictable_us * stats.unpredictable)
                * self.predictor_factor;
        n_points as f64 * per_point * 1e-6
    }

    /// Single-core decompression time in seconds.
    pub fn decompression_seconds(&self, n_points: usize, stats: &QuantBinStats) -> f64 {
        self.compression_seconds(n_points, stats) * self.decompress_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(entropy: f64, unpred: f64) -> QuantBinStats {
        QuantBinStats { p0: 0.8, cap_p0: 0.5, quant_entropy: entropy, r_rle: 2.0, unpredictable: unpred }
    }

    #[test]
    fn calibration_matches_table_v_magnitudes() {
        // CESM field: 1800×3600 = 6.48 M points, H(q) ≈ 2 → ≈ 1.5 s.
        let m = CostModel::for_predictor(PredictorKind::InterpCubic);
        let cesm = m.compression_seconds(1800 * 3600, &stats(2.0, 0.001));
        assert!((1.0..3.0).contains(&cesm), "cesm={cesm}");
        // Nyx field: 512³ = 134 M points → ≈ 30–45 s.
        let nyx = m.compression_seconds(512 * 512 * 512, &stats(2.5, 0.002));
        assert!((25.0..55.0).contains(&nyx), "nyx={nyx}");
    }

    #[test]
    fn higher_entropy_costs_more() {
        let m = CostModel::for_predictor(PredictorKind::Lorenzo);
        let lo = m.compression_seconds(1_000_000, &stats(0.5, 0.0));
        let hi = m.compression_seconds(1_000_000, &stats(6.0, 0.0));
        assert!(hi > lo * 1.3, "hi={hi} lo={lo}");
    }

    #[test]
    fn decompression_is_cheaper() {
        let m = CostModel::for_predictor(PredictorKind::InterpCubic);
        let s = stats(2.0, 0.0);
        assert!(m.decompression_seconds(1_000_000, &s) < m.compression_seconds(1_000_000, &s));
    }

    #[test]
    fn cost_scales_linearly_with_points() {
        let m = CostModel::for_predictor(PredictorKind::Regression);
        let s = stats(1.0, 0.01);
        let t1 = m.compression_seconds(1_000_000, &s);
        let t2 = m.compression_seconds(2_000_000, &s);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }
}
