//! Scalar value abstraction over the floating-point types the compressor
//! supports (`f32` and `f64`).

/// A floating-point scalar that can be compressed.
///
/// This trait is sealed: it is implemented for [`f32`] and [`f64`] only, and
/// downstream crates cannot add implementations (the compressed stream format
/// encodes a fixed type tag per implementation).
pub trait ScalarValue:
    Copy + PartialOrd + PartialEq + std::fmt::Debug + std::fmt::Display + Send + Sync + 'static + private::Sealed
{
    /// Short stable name used in stream headers and error messages.
    const TYPE_NAME: &'static str;
    /// Size of the scalar in bytes.
    const BYTES: usize;

    /// Lossless widening to `f64` (used by predictors and quantizers, which
    /// operate in double precision internally).
    fn to_f64(self) -> f64;
    /// Narrowing from `f64`; may round for `f32`.
    fn from_f64(v: f64) -> Self;
    /// Append the little-endian byte representation to `out`.
    fn write_le(self, out: &mut Vec<u8>);
    /// Read a value from a little-endian byte slice of length [`Self::BYTES`].
    ///
    /// # Panics
    /// Panics if `bytes.len() < Self::BYTES`.
    fn read_le(bytes: &[u8]) -> Self;
    /// Additive zero.
    fn zero() -> Self;
    /// Whether the value is NaN.
    fn is_nan(self) -> bool;
}

mod private {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

impl ScalarValue for f32 {
    const TYPE_NAME: &'static str = "f32";
    const BYTES: usize = 4;

    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    #[inline]
    fn read_le(bytes: &[u8]) -> Self {
        f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])
    }
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn is_nan(self) -> bool {
        f32::is_nan(self)
    }
}

impl ScalarValue for f64 {
    const TYPE_NAME: &'static str = "f64";
    const BYTES: usize = 8;

    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    #[inline]
    fn read_le(bytes: &[u8]) -> Self {
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[..8]);
        f64::from_le_bytes(b)
    }
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn is_nan(self) -> bool {
        f64::is_nan(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_round_trips_through_bytes() {
        let mut buf = Vec::new();
        1.5f32.write_le(&mut buf);
        assert_eq!(buf.len(), f32::BYTES);
        assert_eq!(f32::read_le(&buf), 1.5);
    }

    #[test]
    fn f64_round_trips_through_bytes() {
        let mut buf = Vec::new();
        (-0.25f64).write_le(&mut buf);
        assert_eq!(buf.len(), f64::BYTES);
        assert_eq!(f64::read_le(&buf), -0.25);
    }

    #[test]
    fn f64_widening_is_exact_for_f32() {
        let v = std::f32::consts::PI;
        assert_eq!(f32::from_f64(v.to_f64()), v);
    }

    #[test]
    fn type_names_are_distinct() {
        assert_ne!(f32::TYPE_NAME, f64::TYPE_NAME);
    }
}
