//! Composable compression pipelines: predictor → quantizer → entropy coder →
//! dictionary coder, mirroring SZ3's modular framework.

use crate::config::{LosslessBackend, LossyConfig, PredictorKind};
use crate::encode::{huffman_decode, huffman_encode, lz_compress, lz_decompress, rle_decode, rle_encode};
use crate::error::SzError;
use crate::format::{BlobHeader, BlobWriter, Codec, CompressedBlob};
use crate::ndarray::Dataset;
use crate::predict::{interp, lorenzo, lorenzo2, regression, PredictionStreams};
use crate::quantizer::LinearQuantizer;
use crate::stats::{quant_bin_stats, QuantBinStats};
use crate::value::ScalarValue;
use crate::zfp;

/// Per-stage byte accounting of a compressed blob (where the bits went).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SectionSizes {
    /// Predictor side data (regression coefficients, block flags).
    pub side_data: usize,
    /// Verbatim unpredictable values.
    pub unpredictable: usize,
    /// Entropy-coded quantization bins (after the lossless backend).
    pub codes: usize,
    /// Header and framing overhead (everything else).
    pub framing: usize,
}

impl SectionSizes {
    /// Total bytes across all sections.
    pub fn total(&self) -> usize {
        self.side_data + self.unpredictable + self.codes + self.framing
    }
}

/// Everything produced by a compression run, for callers that want more than
/// the blob (the quality predictor reads the bin statistics).
#[derive(Debug, Clone)]
pub struct CompressionOutcome {
    /// The serialized compressed data.
    pub blob: CompressedBlob,
    /// Quantization-bin statistics of the full (unsampled) code stream.
    pub bin_stats: QuantBinStats,
    /// Uncompressed size in bytes.
    pub original_bytes: usize,
    /// Achieved compression ratio (`original / compressed`).
    pub ratio: f64,
    /// Where the compressed bytes went, stage by stage.
    pub sections: SectionSizes,
}

/// Compresses a dataset with the given pipeline configuration.
///
/// # Errors
/// Returns [`SzError::InvalidConfig`] for invalid configurations and
/// [`SzError::InvalidShape`] for unsupported shapes.
pub fn compress<T: ScalarValue>(data: &Dataset<T>, config: &LossyConfig) -> Result<CompressedBlob, SzError> {
    Ok(compress_with_stats(data, config)?.blob)
}

/// Compresses a dataset, also returning bin statistics and the ratio.
///
/// # Errors
/// Same as [`compress`].
pub fn compress_with_stats<T: ScalarValue>(
    data: &Dataset<T>,
    config: &LossyConfig,
) -> Result<CompressionOutcome, SzError> {
    let obs = ocelot_obs::global();
    let _span = obs.wall_span("compress", None, 0);
    config.validate()?;
    let abs_eb = config.error_bound.resolve(data);
    let quantizer = LinearQuantizer::new(abs_eb, config.quant_radius);
    let t0 = std::time::Instant::now();
    let streams = {
        let _s = obs.wall_span("compress.predict_quantize", None, 0);
        run_predictor(data, config.predictor, &quantizer)?
    };
    obs.observe(
        "ocelot_sz_predict_quantize_seconds",
        "Wall time of the fused predictor+quantizer stage",
        t0.elapsed().as_secs_f64(),
    );

    let zero_code = config.quant_radius;
    let bin_stats = quant_bin_stats(&streams.codes, zero_code);

    let t1 = std::time::Instant::now();
    let encoded_codes = {
        let _s = obs.wall_span("compress.encode", None, 0);
        encode_codes(&streams.codes, config.backend, zero_code)
    };
    obs.observe(
        "ocelot_sz_encode_seconds",
        "Wall time of the entropy/dictionary coding stage (Huffman/LZ/RLE)",
        t1.elapsed().as_secs_f64(),
    );
    let mut unpred_bytes = Vec::with_capacity(streams.unpredictable.len() * T::BYTES);
    for &v in &streams.unpredictable {
        v.write_le(&mut unpred_bytes);
    }

    let header = BlobHeader {
        codec: Codec::Prediction,
        dtype: T::TYPE_NAME,
        dims: data.dims().to_vec(),
        abs_eb,
        predictor: config.predictor,
        backend: config.backend,
        quant_radius: config.quant_radius,
    };
    let mut writer = BlobWriter::new(&header)?;
    writer.section(&streams.side_data).section(&unpred_bytes).section(&encoded_codes);
    let blob = writer.finish();
    let original_bytes = data.nbytes();
    let ratio = original_bytes as f64 / blob.len() as f64;
    let sections = SectionSizes {
        side_data: streams.side_data.len(),
        unpredictable: unpred_bytes.len(),
        codes: encoded_codes.len(),
        framing: blob.len() - streams.side_data.len() - unpred_bytes.len() - encoded_codes.len(),
    };
    obs.inc("ocelot_sz_compress_total", "Completed compression runs");
    obs.add("ocelot_sz_bytes_in_total", "Uncompressed bytes fed to the compressor", original_bytes as u64);
    obs.add("ocelot_sz_bytes_out_total", "Compressed bytes produced", blob.len() as u64);
    obs.observe("ocelot_sz_ratio", "Achieved compression ratio (original/compressed)", ratio);
    obs.observe("ocelot_sz_compress_seconds", "Wall time of a full compression run", t0.elapsed().as_secs_f64());
    Ok(CompressionOutcome { blob, bin_stats, original_bytes, ratio, sections })
}

/// Decompresses a blob produced by [`compress`] or
/// [`crate::zfp::compress`].
///
/// # Errors
/// Returns [`SzError::TypeMismatch`] if `T` differs from the compressed
/// type, and [`SzError::CorruptStream`] for malformed payloads.
pub fn decompress<T: ScalarValue>(blob: &CompressedBlob) -> Result<Dataset<T>, SzError> {
    let obs = ocelot_obs::global();
    let _span = obs.wall_span("decompress", None, 0);
    let t0 = std::time::Instant::now();
    let (header, mut sections) = blob.open()?;
    if header.dtype != T::TYPE_NAME {
        return Err(SzError::TypeMismatch { expected: T::TYPE_NAME, found: header.dtype.to_string() });
    }
    let result = match header.codec {
        Codec::Transform => zfp::decompress_payload::<T>(&header, &mut sections),
        Codec::Prediction => {
            let side_data = sections.next_section()?.to_vec();
            let unpred_bytes = sections.next_section()?;
            if unpred_bytes.len() % T::BYTES != 0 {
                return Err(SzError::CorruptStream("unpredictable section misaligned".into()));
            }
            let unpredictable: Vec<T> = unpred_bytes.chunks_exact(T::BYTES).map(T::read_le).collect();
            let encoded_codes = sections.next_section()?;
            let codes = {
                let _s = obs.wall_span("decompress.decode", None, 0);
                decode_codes(encoded_codes, header.backend, header.quant_radius)?
            };
            let streams = PredictionStreams { codes, unpredictable, side_data };
            let quantizer = LinearQuantizer::new(header.abs_eb, header.quant_radius);
            let _s = obs.wall_span("decompress.reconstruct", None, 0);
            match header.predictor {
                PredictorKind::Lorenzo => lorenzo::decompress(&header.dims, &streams, &quantizer),
                PredictorKind::Lorenzo2 => lorenzo2::decompress(&header.dims, &streams, &quantizer),
                PredictorKind::Regression => regression::decompress(&header.dims, &streams, &quantizer),
                PredictorKind::InterpLinear => {
                    interp::decompress(&header.dims, &streams, &quantizer, interp::Basis::Linear)
                }
                PredictorKind::InterpCubic => {
                    interp::decompress(&header.dims, &streams, &quantizer, interp::Basis::Cubic)
                }
            }
        }
    };
    if result.is_ok() {
        obs.inc("ocelot_sz_decompress_total", "Completed decompression runs");
        obs.observe(
            "ocelot_sz_decompress_seconds",
            "Wall time of a full decompression run",
            t0.elapsed().as_secs_f64(),
        );
    }
    result
}

fn run_predictor<T: ScalarValue>(
    data: &Dataset<T>,
    predictor: PredictorKind,
    quantizer: &LinearQuantizer,
) -> Result<PredictionStreams<T>, SzError> {
    match predictor {
        PredictorKind::Lorenzo => lorenzo::compress(data, quantizer),
        PredictorKind::Lorenzo2 => lorenzo2::compress(data, quantizer),
        PredictorKind::Regression => regression::compress(data, quantizer),
        PredictorKind::InterpLinear => interp::compress(data, quantizer, interp::Basis::Linear),
        PredictorKind::InterpCubic => interp::compress(data, quantizer, interp::Basis::Cubic),
    }
}

fn encode_codes(codes: &[u32], backend: LosslessBackend, zero_code: u32) -> Vec<u8> {
    match backend {
        LosslessBackend::Huffman => huffman_encode(codes),
        LosslessBackend::HuffmanLz => lz_compress(&huffman_encode(codes)),
        LosslessBackend::RleHuffman => huffman_encode(&rle_encode(codes, zero_code)),
    }
}

fn decode_codes(bytes: &[u8], backend: LosslessBackend, zero_code: u32) -> Result<Vec<u32>, SzError> {
    match backend {
        LosslessBackend::Huffman => huffman_decode(bytes),
        LosslessBackend::HuffmanLz => huffman_decode(&lz_decompress(bytes)?),
        LosslessBackend::RleHuffman => {
            let encoded = huffman_decode(bytes)?;
            rle_decode(&encoded, zero_code).ok_or_else(|| SzError::CorruptStream("rle: malformed run stream".into()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ErrorBound;
    use crate::metrics;

    fn wavy(dims: Vec<usize>) -> Dataset<f32> {
        Dataset::from_fn(dims, |i| {
            let x = i.iter().enumerate().map(|(d, &v)| (v as f32) * 0.11 * (d as f32 + 1.0)).sum::<f32>();
            x.sin() * 10.0 + 0.3 * x
        })
    }

    #[test]
    fn all_pipelines_respect_error_bound() {
        let data = wavy(vec![24, 30, 18]);
        for predictor in PredictorKind::ALL {
            for backend in [LosslessBackend::Huffman, LosslessBackend::HuffmanLz, LosslessBackend::RleHuffman] {
                let cfg = LossyConfig::sz3_abs(1e-3).with_predictor(predictor).with_backend(backend);
                let blob = compress(&data, &cfg).unwrap();
                let out = decompress::<f32>(&blob).unwrap();
                let report = metrics::compare(&data, &out).unwrap();
                assert!(report.within_bound(1e-3), "{predictor:?}/{backend:?}: max={}", report.max_abs_error);
            }
        }
    }

    #[test]
    fn relative_bound_resolves_at_compression_time() {
        let data = wavy(vec![64, 64]);
        let cfg = LossyConfig::sz3(1e-3); // relative
        let blob = compress(&data, &cfg).unwrap();
        let abs = blob.header().unwrap().abs_eb;
        assert!((abs - 1e-3 * data.value_range()).abs() < 1e-12);
        let out = decompress::<f32>(&blob).unwrap();
        assert!(metrics::compare(&data, &out).unwrap().within_bound(abs));
    }

    #[test]
    fn tighter_bound_means_lower_ratio() {
        let data = wavy(vec![60, 60]);
        let loose = compress_with_stats(&data, &LossyConfig::sz3(1e-2)).unwrap();
        let tight = compress_with_stats(&data, &LossyConfig::sz3(1e-5)).unwrap();
        assert!(loose.ratio > tight.ratio, "loose={} tight={}", loose.ratio, tight.ratio);
    }

    #[test]
    fn type_mismatch_is_detected() {
        let data = wavy(vec![16, 16]);
        let blob = compress(&data, &LossyConfig::sz3(1e-3)).unwrap();
        assert!(matches!(decompress::<f64>(&blob), Err(SzError::TypeMismatch { .. })));
    }

    #[test]
    fn f64_round_trip() {
        let data = Dataset::from_fn(vec![40, 40], |i| ((i[0] * i[1]) as f64 * 0.001).cos());
        let cfg = LossyConfig::sz3_abs(1e-6);
        let blob = compress(&data, &cfg).unwrap();
        let out = decompress::<f64>(&blob).unwrap();
        assert!(metrics::compare(&data, &out).unwrap().within_bound(1e-6));
    }

    #[test]
    fn bin_stats_reflect_smoothness() {
        // Exactly Lorenzo-predictable integer lattice: p0 = 1.
        let smooth = Dataset::from_fn(vec![64, 64], |i| (i[0] + i[1]) as f32);
        let cfg = LossyConfig::lorenzo(1.0).with_error_bound(ErrorBound::Abs(0.25));
        let out = compress_with_stats(&smooth, &cfg).unwrap();
        // Interior is exactly predicted; the domain boundary (~3 %) is not.
        assert!(out.bin_stats.p0 > 0.95, "p0={}", out.bin_stats.p0);
        // Noisy data lands far from p0 = 1.
        let mut state = 3u64;
        let noise = Dataset::from_fn(vec![64, 64], |_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 40) as f32
        });
        let noisy = compress_with_stats(&noise, &cfg).unwrap();
        assert!(noisy.bin_stats.p0 < out.bin_stats.p0);
        // Huge random jumps overwhelm the 0.25 bound: most points are stored
        // verbatim rather than quantized.
        assert!(noisy.bin_stats.unpredictable > 0.5);
    }

    #[test]
    fn invalid_config_rejected() {
        let data = wavy(vec![8, 8]);
        let cfg = LossyConfig::sz3_abs(0.0);
        assert!(compress(&data, &cfg).is_err());
    }

    #[test]
    fn corrupt_blob_rejected_gracefully() {
        let data = wavy(vec![16, 16]);
        let blob = compress(&data, &LossyConfig::sz3(1e-3)).unwrap();
        let mut bytes = blob.into_bytes();
        let n = bytes.len();
        bytes.truncate(n - 10);
        // Framing may already reject the truncation; if it parses, the
        // decoder must reject it instead.
        if let Ok(blob) = CompressedBlob::from_bytes(bytes) {
            assert!(decompress::<f32>(&blob).is_err());
        }
    }

    #[test]
    fn ratio_accounts_for_header_overhead() {
        let data = wavy(vec![32]);
        let out = compress_with_stats(&data, &LossyConfig::sz3(1e-3)).unwrap();
        assert_eq!(out.original_bytes, 32 * 4);
        assert!((out.ratio - out.original_bytes as f64 / out.blob.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn section_sizes_account_for_every_byte() {
        let data = wavy(vec![40, 40]);
        let out = compress_with_stats(&data, &LossyConfig::sz3(1e-3)).unwrap();
        assert_eq!(out.sections.total(), out.blob.len());
        assert!(out.sections.codes > 0, "codes section carries the payload");
        assert!(out.sections.framing > 0, "headers and checksum exist");
        // Smooth data has no unpredictable values.
        assert_eq!(out.sections.unpredictable, 0);
        // Regression pipelines carry side data; interpolation does not.
        let reg = compress_with_stats(&data, &LossyConfig::sz2(1e-3)).unwrap();
        assert!(reg.sections.side_data > 0);
        let interp = compress_with_stats(&data, &LossyConfig::sz3(1e-3)).unwrap();
        assert_eq!(interp.sections.side_data, 0);
    }

    #[test]
    fn abs_bound_constructor_round_trips() {
        let cfg = LossyConfig::sz3_abs(0.5);
        let ErrorBound::Abs(v) = cfg.error_bound else { panic!("expected Abs, got {:?}", cfg.error_bound) };
        assert_eq!(v, 0.5);
    }
}
