//! Composable compression pipelines: predictor → quantizer → entropy coder →
//! dictionary coder, mirroring SZ3's modular framework — executed
//! chunk-parallel on a bounded worker pool (SZx-style coarse blocks).
//!
//! [`compress`] splits the dataset into row slabs ([`crate::engine`]),
//! compresses each slab independently (predictor state resets per chunk, so
//! chunks decode in isolation), and assembles a version-3 container whose
//! chunk table records per-chunk offsets, CRC-32s, and quantization
//! statistics. `threads = 1` (the default) produces a single chunk whose
//! payload is exactly the serial pipeline's stream.

use std::sync::Mutex;

use crate::config::{LosslessBackend, LossyConfig, PredictorKind};
use crate::encode::huffman::HuffmanTable;
use crate::encode::{huffman_decode, huffman_encode, lz_compress, lz_decompress, rle_decode, rle_encode};
use crate::engine::{parallel_map, parallel_map_windowed, ChunkLayout};
use crate::error::SzError;
use crate::format::{
    write_framed, BlobHeader, BlobWriter, ChunkEntry, ChunkTable, CodecFamily, CompressedBlob, SectionReader,
    TABLE_MODE_LOCAL, TABLE_MODE_SHARED, VERSION, VERSION_V1, VERSION_V3,
};
use crate::ndarray::{Dataset, DatasetView};
use crate::predict::{interp, lorenzo, lorenzo2, regression, PredictionStreams, StreamsView};
use crate::quantizer::LinearQuantizer;
use crate::stats::{code_histogram, merge_histograms, quant_bin_stats_from_hist, QuantBinStats};
use crate::value::ScalarValue;
use crate::zfp;
use ocelot_obs::prof::{self, Kernel, ScopeId};

/// Per-stage byte accounting of a compressed blob (where the bits went).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SectionSizes {
    /// Predictor side data (regression coefficients, block flags).
    pub side_data: usize,
    /// Verbatim unpredictable values.
    pub unpredictable: usize,
    /// Entropy-coded quantization bins (after the lossless backend).
    pub codes: usize,
    /// Header, chunk table, and framing overhead (everything else).
    pub framing: usize,
}

impl SectionSizes {
    /// Total bytes across all sections.
    pub fn total(&self) -> usize {
        self.side_data + self.unpredictable + self.codes + self.framing
    }
}

/// Everything produced by a compression run. Statistics are always collected
/// — they cost one pass over the quantization codes, noise against the
/// entropy-coding work that follows.
#[derive(Debug, Clone)]
pub struct CompressionOutcome {
    /// The serialized compressed data.
    pub blob: CompressedBlob,
    /// Quantization-bin statistics over the full (unsampled) code stream,
    /// aggregated across chunks.
    pub bin_stats: QuantBinStats,
    /// Uncompressed size in bytes.
    pub original_bytes: usize,
    /// Achieved compression ratio (`original / compressed`).
    pub ratio: f64,
    /// Where the compressed bytes went, stage by stage.
    pub sections: SectionSizes,
    /// Number of independently decodable chunks in the container.
    pub chunks: usize,
}

/// One compressed chunk plus the metadata the container and the aggregated
/// statistics need. Workers hand back a sparse code histogram instead of the
/// codes themselves, so the consumer never re-buffers per-point data.
pub(crate) struct EncodedChunk {
    pub payload: Vec<u8>,
    /// CRC-32 of `payload`, computed on the worker while the chunk is hot.
    pub crc: u32,
    /// Sparse `(code, count)` histogram of the quantization codes, sorted by
    /// code (prediction family; empty for transform chunks).
    pub hist: Vec<(u32, u64)>,
    /// How the code stream was entropy-coded ([`TABLE_MODE_LOCAL`] /
    /// [`TABLE_MODE_SHARED`]).
    pub table_mode: u8,
    pub unpredictable: u64,
    pub side_bytes: usize,
    pub unpred_bytes: usize,
    pub code_bytes: usize,
}

/// Compresses a dataset with the given pipeline configuration, returning the
/// blob together with bin statistics, byte accounting, and the achieved
/// ratio.
///
/// `config.threads` workers compress `config.chunk_points`-sized row slabs
/// concurrently; both default to the serial single-chunk pipeline.
///
/// # Errors
/// Returns [`SzError::InvalidConfig`] for invalid configurations and
/// [`SzError::InvalidShape`] for unsupported shapes.
pub fn compress<T: ScalarValue>(data: &Dataset<T>, config: &LossyConfig) -> Result<CompressionOutcome, SzError> {
    compress_streamed(data, config, 0, |_| Ok(()))
}

/// One compressed chunk handed to a [`compress_streamed`] sink — in index
/// order, as soon as it *and every earlier chunk* are encoded. `payload` is
/// exactly the byte run the chunk occupies in the finished container, and
/// `entry` is its chunk-table row, so a consumer can forward the chunk into
/// a transfer lane and decode it on arrival without waiting for the blob.
#[derive(Debug)]
pub struct StreamedChunk<'a> {
    /// Chunk index within the container (0-based, dense).
    pub index: usize,
    /// Total number of chunks the container will hold.
    pub total: usize,
    /// The container header the chunk belongs to.
    pub header: &'a BlobHeader,
    /// Shape of this chunk (same rank as the dataset, shorter dimension 0).
    pub dims: &'a [usize],
    /// The chunk's row in the container's chunk table.
    pub entry: ChunkEntry,
    /// The chunk's container payload bytes.
    pub payload: &'a [u8],
    /// The blob's serialized shared Huffman table (empty when every chunk is
    /// self-describing). A streamed consumer needs it to decode chunks whose
    /// `entry.table_mode` is [`TABLE_MODE_SHARED`] before the blob exists.
    pub shared_table: &'a [u8],
}

/// Streaming variant of [`compress`]: hands each compressed chunk to `sink`
/// in index order as soon as it is ready, with at most `window` chunks in
/// flight between the compress workers and the sink (`window == 0` means
/// unbounded — the staged degenerate case). Workers that run ahead of the
/// sink stall until it catches up, bounding buffered chunk memory by the
/// window instead of the dataset size.
///
/// The returned outcome — including the assembled container blob — is
/// byte-identical to [`compress`] at every thread count and window size.
///
/// # Errors
/// Everything [`compress`] returns, plus any error the sink raises (the
/// first sink error aborts further sink calls and is returned).
pub fn compress_streamed<T: ScalarValue>(
    data: &Dataset<T>,
    config: &LossyConfig,
    window: usize,
    sink: impl FnMut(StreamedChunk<'_>) -> Result<(), SzError>,
) -> Result<CompressionOutcome, SzError> {
    config.validate()?;
    let abs_eb = config.error_bound.resolve(data);
    let header = BlobHeader {
        version: VERSION,
        family: CodecFamily::Prediction,
        dtype: T::TYPE_NAME,
        dims: data.dims().to_vec(),
        abs_eb,
        predictor: config.predictor,
        backend: config.backend,
        quant_radius: config.quant_radius,
    };
    let quantizer = LinearQuantizer::new(abs_eb, config.quant_radius);
    let zero_code = config.quant_radius;

    // Shared-table mode: when the layout splits the job, compress chunk 0 on
    // the calling thread first and build one canonical Huffman table from its
    // histogram. Every chunk then tries the shared table (skipping the
    // per-chunk tree build) and falls back to a local self-describing table
    // only if its symbols escape. The layout — and therefore the decision and
    // the table itself — is a pure function of shape, chunk size, and data,
    // so the blob bytes stay identical at every thread count and window.
    let layout = ChunkLayout::plan(data.dims(), config.threads, config.chunk_points);
    let mut precomputed: Option<PredictionStreams<T>> = None;
    let shared: Option<HuffmanTable> = if layout.n_chunks() > 1 {
        let dims0 = layout.chunk_dims(0);
        let view = DatasetView::new(&dims0, &data.values()[layout.value_range(0)])
            .expect("chunk shapes are valid by construction");
        let streams = run_predictor(view, config.predictor, &quantizer)?;
        let table = match config.backend {
            LosslessBackend::RleHuffman => HuffmanTable::from_symbols(&rle_encode(&streams.codes, zero_code)),
            _ => HuffmanTable::from_symbols(&streams.codes),
        };
        precomputed = Some(streams);
        table
    } else {
        None
    };
    let shared_bytes = shared.as_ref().map(HuffmanTable::serialize).unwrap_or_default();
    let chunk0 = Mutex::new(precomputed);

    compress_chunked_streamed(
        data,
        header,
        config.threads,
        config.chunk_points,
        window,
        &shared_bytes,
        sink,
        |i, chunk| {
            let streams = match if i == 0 { chunk0.lock().expect("chunk0 mutex").take() } else { None } {
                Some(s) => s,
                None => run_predictor(chunk, config.predictor, &quantizer)?,
            };
            let (encoded_codes, table_mode) = encode_codes(&streams.codes, config.backend, zero_code, shared.as_ref());
            let mut unpred_bytes = Vec::with_capacity(streams.unpredictable.len() * T::BYTES);
            for &v in &streams.unpredictable {
                v.write_le(&mut unpred_bytes);
            }
            let mut payload =
                Vec::with_capacity(24 + streams.side_data.len() + unpred_bytes.len() + encoded_codes.len());
            write_framed(&mut payload, &streams.side_data);
            write_framed(&mut payload, &unpred_bytes);
            write_framed(&mut payload, &encoded_codes);
            // CRC on the worker, while the payload is cache-hot, instead of on
            // the in-order consumer where it would serialize behind every chunk.
            let crc = {
                let _p = prof::probe(Kernel::FrameCrc, payload.len());
                crate::checksum::crc32(&payload)
            };
            Ok(EncodedChunk {
                payload,
                crc,
                hist: code_histogram(&streams.codes),
                table_mode,
                unpredictable: streams.unpredictable.len() as u64,
                side_bytes: streams.side_data.len(),
                unpred_bytes: unpred_bytes.len(),
                code_bytes: encoded_codes.len(),
            })
        },
    )
}

/// Deprecated alias of [`compress`], kept from the era when `compress`
/// returned only the blob and statistics were opt-in.
#[deprecated(note = "use `compress`, which now always returns a `CompressionOutcome`")]
pub fn compress_with_stats<T: ScalarValue>(
    data: &Dataset<T>,
    config: &LossyConfig,
) -> Result<CompressionOutcome, SzError> {
    compress(data, config)
}

/// Shared chunked-container assembly: plans the layout, runs `encode_chunk`
/// on the worker pool, and frames the chunked blob. Used by both codec
/// families.
pub(crate) fn compress_chunked<T, F>(
    data: &Dataset<T>,
    header: BlobHeader,
    threads: usize,
    chunk_points: Option<usize>,
    encode_chunk: F,
) -> Result<CompressionOutcome, SzError>
where
    T: ScalarValue,
    F: Fn(usize, DatasetView<'_, T>) -> Result<EncodedChunk, SzError> + Sync,
{
    compress_chunked_streamed(data, header, threads, chunk_points, 0, &[], |_| Ok(()), encode_chunk)
}

/// Streaming core shared by [`compress_chunked`] (no-op sink, unbounded
/// window) and [`compress_streamed`]: chunks are encoded on the worker pool
/// and *consumed in index order* on the calling thread — each one offered to
/// `sink` the moment it is in order — so the container bytes never depend on
/// scheduling, window, or thread count.
#[allow(clippy::too_many_arguments)]
fn compress_chunked_streamed<T, F, S>(
    data: &Dataset<T>,
    header: BlobHeader,
    threads: usize,
    chunk_points: Option<usize>,
    window: usize,
    shared_table: &[u8],
    mut sink: S,
    encode_chunk: F,
) -> Result<CompressionOutcome, SzError>
where
    T: ScalarValue,
    F: Fn(usize, DatasetView<'_, T>) -> Result<EncodedChunk, SzError> + Sync,
    S: FnMut(StreamedChunk<'_>) -> Result<(), SzError>,
{
    let obs = ocelot_obs::global();
    let _span = obs.wall_span("compress", None, 0);
    // Calling-thread profiling scope: in-order consumption (CRC, container
    // assembly) and, with `threads == 1`, the chunk encoding itself drain
    // here. Worker threads open their own per-chunk scopes.
    let _pscope = prof::scope(ScopeId::COMPRESS);
    let t0 = std::time::Instant::now();
    let layout = ChunkLayout::plan(data.dims(), threads, chunk_points);
    let n = layout.n_chunks();
    // All chunks but the last share one shape; precompute both so splitting
    // allocates nothing per chunk (the slab itself is a borrowed sub-slice).
    let full_dims = layout.chunk_dims(0);
    let tail_dims = layout.chunk_dims(n - 1);
    let dims_of = |i: usize| -> &[usize] {
        if layout.rows_in_chunk(i) == full_dims[0] {
            &full_dims
        } else {
            &tail_dims
        }
    };
    let zero_code = header.quant_radius;
    // In-order consumer state: chunk payloads append straight into `body`
    // (the byte run that becomes the container's chunk region) the moment
    // they are in order, per-chunk histograms merge into one running
    // histogram, and byte accounting stays scalar — nothing per-point is
    // retained after a chunk is sealed.
    let mut body: Vec<u8> = Vec::new();
    let mut entries: Vec<ChunkEntry> = Vec::with_capacity(n);
    let mut hist: Vec<(u32, u64)> = Vec::new();
    let mut sections = SectionSizes::default();
    let mut first_err: Option<SzError> = None;
    parallel_map_windowed(
        n,
        threads,
        window,
        |i| {
            let _chunk_span = obs.wall_span("sz.chunk", None, i as u32);
            let _pchunk = prof::scope(ScopeId::COMPRESS);
            let tc = std::time::Instant::now();
            let view = DatasetView::new(dims_of(i), &data.values()[layout.value_range(i)])
                .expect("chunk shapes are valid by construction");
            let out = encode_chunk(i, view);
            obs.observe(
                "ocelot_sz_chunk_seconds",
                "Wall time of one chunk compression task",
                tc.elapsed().as_secs_f64(),
            );
            if let Ok(c) = &out {
                ocelot_obs::ledger::emit(
                    ocelot_obs::ledger::EventKind::Encoded,
                    ocelot_obs::ledger::Draft {
                        chunk: Some(i as u32),
                        bytes: c.payload.len() as u64,
                        ..ocelot_obs::ledger::Draft::default()
                    },
                );
            }
            out
        },
        |i, result| {
            if first_err.is_some() {
                return;
            }
            match result {
                Ok(c) => {
                    let zero_bins =
                        c.hist.binary_search_by_key(&zero_code, |&(code, _)| code).map_or(0, |idx| c.hist[idx].1);
                    let entry = ChunkEntry {
                        len: c.payload.len(),
                        crc: c.crc,
                        points: layout.points_in_chunk(i) as u64,
                        zero_bins,
                        unpredictable: c.unpredictable,
                        table_mode: c.table_mode,
                    };
                    let streamed = StreamedChunk {
                        index: i,
                        total: n,
                        header: &header,
                        dims: dims_of(i),
                        entry,
                        payload: &c.payload,
                        shared_table,
                    };
                    if let Err(e) = sink(streamed) {
                        first_err = Some(e);
                        return;
                    }
                    // Chunk sealed: CRC'd, tabled, and offered in order —
                    // the wall-clock twin of the simulated `released`.
                    ocelot_obs::ledger::emit(
                        ocelot_obs::ledger::EventKind::Sealed,
                        ocelot_obs::ledger::Draft {
                            chunk: Some(i as u32),
                            bytes: entry.len as u64,
                            ..ocelot_obs::ledger::Draft::default()
                        },
                    );
                    entries.push(entry);
                    body.extend_from_slice(&c.payload);
                    merge_histograms(&mut hist, &c.hist);
                    sections.side_data += c.side_bytes;
                    sections.unpredictable += c.unpred_bytes;
                    sections.codes += c.code_bytes;
                }
                Err(e) => first_err = Some(e),
            }
        },
    );
    if let Some(e) = first_err {
        return Err(e);
    }

    let bin_stats = quant_bin_stats_from_hist(&hist, zero_code);
    let table = ChunkTable { chunk_rows: layout.chunk_rows(), entries };

    let table_bytes = table.encode();
    let mut writer = BlobWriter::new(&header)?;
    writer
        .reserve(16 + table_bytes.len() + shared_table.len() + body.len() + 4)
        .section(&table_bytes)
        .section(shared_table)
        .raw(&body);
    let blob = writer.finish();

    let original_bytes = data.nbytes();
    let ratio = original_bytes as f64 / blob.len() as f64;
    sections.framing = blob.len() - (sections.side_data + sections.unpredictable + sections.codes);
    obs.inc("ocelot_sz_compress_total", "Completed compression runs");
    obs.add("ocelot_sz_bytes_in_total", "Uncompressed bytes fed to the compressor", original_bytes as u64);
    obs.add("ocelot_sz_bytes_out_total", "Compressed bytes produced", blob.len() as u64);
    obs.observe("ocelot_sz_ratio", "Achieved compression ratio (original/compressed)", ratio);
    obs.observe("ocelot_sz_compress_seconds", "Wall time of a full compression run", t0.elapsed().as_secs_f64());
    Ok(CompressionOutcome { blob, bin_stats, original_bytes, ratio, sections, chunks: n })
}

/// Decompresses a blob on a single thread.
///
/// # Errors
/// Returns [`SzError::TypeMismatch`] if `T` differs from the compressed
/// type, [`SzError::CorruptStream`] for malformed payloads, and
/// [`SzError::UnsupportedVersion`] for unknown format versions.
pub fn decompress<T: ScalarValue>(blob: &CompressedBlob) -> Result<Dataset<T>, SzError> {
    decompress_with_threads(blob, 1)
}

/// Decompresses a blob, decoding the chunks of a version-3 container on up
/// to `threads` workers. Output is identical for every thread count.
///
/// # Errors
/// Same as [`decompress`]. Additionally returns
/// [`SzError::InvalidConfig`] if `threads == 0`.
pub fn decompress_with_threads<T: ScalarValue>(blob: &CompressedBlob, threads: usize) -> Result<Dataset<T>, SzError> {
    if threads == 0 {
        return Err(SzError::InvalidConfig("thread count must be at least 1".into()));
    }
    let obs = ocelot_obs::global();
    let _span = obs.wall_span("decompress", None, 0);
    let _pscope = prof::scope(ScopeId::DECOMPRESS);
    let t0 = std::time::Instant::now();
    let (mut header, mut sections) = blob.open()?;
    if header.dtype != T::TYPE_NAME {
        return Err(SzError::TypeMismatch { expected: T::TYPE_NAME, found: header.dtype.to_string() });
    }
    let result = match header.version {
        VERSION_V1 => decompress_v1(&mut header, &mut sections),
        VERSION | VERSION_V3 => decompress_chunked(&mut header, &mut sections, threads),
        other => Err(SzError::UnsupportedVersion(other)),
    };
    if result.is_ok() {
        obs.inc("ocelot_sz_decompress_total", "Completed decompression runs");
        obs.observe(
            "ocelot_sz_decompress_seconds",
            "Wall time of a full decompression run",
            t0.elapsed().as_secs_f64(),
        );
    }
    result
}

/// Legacy monolithic-section layout: the whole dataset is one implicit chunk
/// whose sections sit at the top level of the blob.
///
/// Takes the header by `&mut` so the shape can be moved — not cloned — into
/// the returned dataset.
fn decompress_v1<T: ScalarValue>(
    header: &mut BlobHeader,
    sections: &mut SectionReader<'_>,
) -> Result<Dataset<T>, SzError> {
    match header.family {
        CodecFamily::Transform => {
            let dims = std::mem::take(&mut header.dims);
            let values = zfp::decode_chunk_payload::<T>(&dims, sections.next_section()?)?;
            Dataset::new(dims, values)
        }
        CodecFamily::Prediction => {
            let side_data = sections.next_section()?;
            let unpred_bytes = sections.next_section()?;
            let encoded_codes = sections.next_section()?;
            let dims = std::mem::take(&mut header.dims);
            let values = decode_prediction_values::<T>(
                header,
                &dims,
                side_data,
                unpred_bytes,
                encoded_codes,
                TABLE_MODE_LOCAL,
                None,
            )?;
            Dataset::new(dims, values)
        }
    }
}

/// Chunked container (versions 3 and 4): validates the chunk table against
/// the header's shape, then decodes each chunk independently (in parallel
/// when `threads > 1`) and reassembles the contiguous row slabs.
///
/// Takes the header by `&mut` so the shape can be moved — not cloned — into
/// the returned dataset.
fn decompress_chunked<T: ScalarValue>(
    header: &mut BlobHeader,
    sections: &mut SectionReader<'_>,
    threads: usize,
) -> Result<Dataset<T>, SzError> {
    let obs = ocelot_obs::global();
    let table = ChunkTable::decode(sections.next_section()?)?;
    // Version 4 carries the shared Huffman table (possibly empty) between
    // the chunk table and the payloads; version 3 has no such section.
    let shared = if header.version >= VERSION {
        let bytes = sections.next_section()?;
        if bytes.is_empty() {
            None
        } else {
            Some(HuffmanTable::deserialize(bytes)?)
        }
    } else {
        None
    };
    if shared.is_none() {
        if let Some(i) = table.entries.iter().position(|e| e.table_mode == TABLE_MODE_SHARED) {
            return Err(SzError::CorruptStream(format!(
                "chunk {i} references a shared Huffman table the blob does not carry"
            )));
        }
    }
    let layout = ChunkLayout::from_chunk_rows(&header.dims, table.chunk_rows);
    if table.entries.len() != layout.n_chunks() {
        return Err(SzError::CorruptStream(format!(
            "chunk table holds {} chunks but the shape implies {}",
            table.entries.len(),
            layout.n_chunks()
        )));
    }
    for (i, e) in table.entries.iter().enumerate() {
        if e.points != layout.points_in_chunk(i) as u64 {
            return Err(SzError::CorruptStream(format!("chunk {i} declares {} points", e.points)));
        }
    }
    let body = sections.rest();
    if body.len() != table.payload_len() {
        return Err(SzError::CorruptStream(format!(
            "chunk payloads hold {} bytes but the table declares {}",
            body.len(),
            table.payload_len()
        )));
    }
    let offsets = table.offsets();
    let n = layout.n_chunks();
    // Chunk shapes are shared, not cloned per chunk (see compress side).
    let full_dims = layout.chunk_dims(0);
    let tail_dims = layout.chunk_dims(n - 1);
    let decoded: Vec<Result<Vec<T>, SzError>> = parallel_map(n, threads, |i| {
        let _chunk_span = obs.wall_span("sz.chunk", None, i as u32);
        let _pchunk = prof::scope(ScopeId::DECOMPRESS);
        let tc = std::time::Instant::now();
        let entry = &table.entries[i];
        let payload = &body[offsets[i]..offsets[i] + entry.len];
        let chunk_dims = if layout.rows_in_chunk(i) == full_dims[0] { &full_dims } else { &tail_dims };
        let values = decode_chunk::<T>(header, chunk_dims, i, entry, payload, shared.as_ref())?;
        obs.observe("ocelot_sz_chunk_seconds", "Wall time of one chunk compression task", tc.elapsed().as_secs_f64());
        Ok(values)
    });
    let total: usize = header.dims.iter().product();
    let mut out = Vec::with_capacity(total);
    for r in decoded {
        out.extend_from_slice(&r?);
    }
    Dataset::new(std::mem::take(&mut header.dims), out)
}

/// Decodes one container chunk — CRC check plus family dispatch — into its
/// values. `entry` is the chunk's table row and `payload` its container
/// bytes, exactly as a [`compress_streamed`] sink receives them, so a
/// streamed consumer can decode each chunk on arrival without the blob.
/// `shared` is the blob's shared Huffman table, required when
/// `entry.table_mode` is [`TABLE_MODE_SHARED`] (a streamed consumer builds
/// it once from [`StreamedChunk::shared_table`]).
///
/// # Errors
/// Returns [`SzError::CorruptStream`] on a CRC mismatch or a malformed
/// payload.
pub fn decode_chunk<T: ScalarValue>(
    header: &BlobHeader,
    dims: &[usize],
    index: usize,
    entry: &ChunkEntry,
    payload: &[u8],
    shared: Option<&HuffmanTable>,
) -> Result<Vec<T>, SzError> {
    let crc = {
        let _p = prof::probe(Kernel::FrameCrc, payload.len());
        crate::checksum::crc32(payload)
    };
    if crc != entry.crc {
        return Err(SzError::CorruptStream(format!("chunk {index} failed its CRC-32 check")));
    }
    match header.family {
        CodecFamily::Transform => zfp::decode_chunk_payload::<T>(dims, payload),
        CodecFamily::Prediction => {
            let mut parts = SectionReader::over(payload);
            let side_data = parts.next_section()?;
            let unpred_bytes = parts.next_section()?;
            let encoded_codes = parts.next_section()?;
            decode_prediction_values::<T>(
                header,
                dims,
                side_data,
                unpred_bytes,
                encoded_codes,
                entry.table_mode,
                shared,
            )
        }
    }
}

/// Decodes one prediction-family chunk (or a whole legacy blob) from its
/// three sections into values. The side-data section is borrowed straight
/// out of the payload — nothing is copied before the predictor runs.
#[allow(clippy::too_many_arguments)]
fn decode_prediction_values<T: ScalarValue>(
    header: &BlobHeader,
    dims: &[usize],
    side_data: &[u8],
    unpred_bytes: &[u8],
    encoded_codes: &[u8],
    table_mode: u8,
    shared: Option<&HuffmanTable>,
) -> Result<Vec<T>, SzError> {
    if !unpred_bytes.len().is_multiple_of(T::BYTES) {
        return Err(SzError::CorruptStream("unpredictable section misaligned".into()));
    }
    let unpredictable: Vec<T> = unpred_bytes.chunks_exact(T::BYTES).map(T::read_le).collect();
    let codes = decode_codes(encoded_codes, header.backend, header.quant_radius, table_mode, shared)?;
    let streams = StreamsView { codes: &codes, unpredictable: &unpredictable, side_data };
    let quantizer = LinearQuantizer::new(header.abs_eb, header.quant_radius);
    let _p = prof::probe(Kernel::Predict, dims.iter().product::<usize>() * T::BYTES);
    let data = match header.predictor {
        PredictorKind::Lorenzo => lorenzo::decompress(dims, streams, &quantizer),
        PredictorKind::Lorenzo2 => lorenzo2::decompress(dims, streams, &quantizer),
        PredictorKind::Regression => regression::decompress(dims, streams, &quantizer),
        PredictorKind::InterpLinear => interp::decompress(dims, streams, &quantizer, interp::Basis::Linear),
        PredictorKind::InterpCubic => interp::decompress(dims, streams, &quantizer, interp::Basis::Cubic),
    }?;
    Ok(data.into_values())
}

fn run_predictor<T: ScalarValue>(
    data: DatasetView<'_, T>,
    predictor: PredictorKind,
    quantizer: &LinearQuantizer,
) -> Result<PredictionStreams<T>, SzError> {
    let obs = ocelot_obs::global();
    let t0 = std::time::Instant::now();
    let streams = {
        // The probe covers the fused predict+quantize sweep: quantization
        // never runs as a separate pass, so "predict" is the honest unit.
        let _p = prof::probe(Kernel::Predict, data.nbytes());
        match predictor {
            PredictorKind::Lorenzo => lorenzo::compress(data, quantizer),
            PredictorKind::Lorenzo2 => lorenzo2::compress(data, quantizer),
            PredictorKind::Regression => regression::compress(data, quantizer),
            PredictorKind::InterpLinear => interp::compress(data, quantizer, interp::Basis::Linear),
            PredictorKind::InterpCubic => interp::compress(data, quantizer, interp::Basis::Cubic),
        }
    };
    obs.observe(
        "ocelot_sz_predict_quantize_seconds",
        "Wall time of the fused predictor+quantizer stage",
        t0.elapsed().as_secs_f64(),
    );
    streams
}

/// Huffman stage with optional shared table: try the job-wide table first
/// (no per-chunk tree build or embedded length table); fall back to a local
/// self-describing stream when a symbol escapes it. Returns the bytes plus
/// the table-mode tag for the chunk table.
fn huffman_stage(symbols: &[u32], shared: Option<&HuffmanTable>) -> (Vec<u8>, u8) {
    let _p = prof::probe(Kernel::HuffmanEncode, std::mem::size_of_val(symbols));
    if let Some(table) = shared {
        if let Some(body) = table.encode_stream(symbols) {
            return (body, TABLE_MODE_SHARED);
        }
    }
    (huffman_encode(symbols), TABLE_MODE_LOCAL)
}

fn encode_codes(
    codes: &[u32],
    backend: LosslessBackend,
    zero_code: u32,
    shared: Option<&HuffmanTable>,
) -> (Vec<u8>, u8) {
    let obs = ocelot_obs::global();
    let t0 = std::time::Instant::now();
    let code_bytes = std::mem::size_of_val(codes);
    let (out, table_mode) = match backend {
        LosslessBackend::Huffman => huffman_stage(codes, shared),
        LosslessBackend::HuffmanLz => {
            let (huff, table_mode) = huffman_stage(codes, shared);
            let _p = prof::probe(Kernel::Lz, huff.len());
            (lz_compress(&huff), table_mode)
        }
        LosslessBackend::RleHuffman => {
            let runs = {
                let _p = prof::probe(Kernel::Rle, code_bytes);
                rle_encode(codes, zero_code)
            };
            huffman_stage(&runs, shared)
        }
    };
    obs.observe(
        "ocelot_sz_encode_seconds",
        "Wall time of the entropy/dictionary coding stage (Huffman/LZ/RLE)",
        t0.elapsed().as_secs_f64(),
    );
    (out, table_mode)
}

/// Inverse of [`huffman_stage`]: dispatch on the chunk's table-mode tag.
fn unhuffman_stage(bytes: &[u8], table_mode: u8, shared: Option<&HuffmanTable>) -> Result<Vec<u32>, SzError> {
    let _p = prof::probe(Kernel::HuffmanDecode, bytes.len());
    if table_mode == TABLE_MODE_SHARED {
        let table = shared.ok_or_else(|| {
            SzError::CorruptStream("chunk references a shared Huffman table the blob does not carry".into())
        })?;
        table.decode_stream(bytes)
    } else {
        huffman_decode(bytes)
    }
}

fn decode_codes(
    bytes: &[u8],
    backend: LosslessBackend,
    zero_code: u32,
    table_mode: u8,
    shared: Option<&HuffmanTable>,
) -> Result<Vec<u32>, SzError> {
    match backend {
        LosslessBackend::Huffman => unhuffman_stage(bytes, table_mode, shared),
        LosslessBackend::HuffmanLz => {
            let raw = {
                let _p = prof::probe(Kernel::Lz, bytes.len());
                lz_decompress(bytes)?
            };
            unhuffman_stage(&raw, table_mode, shared)
        }
        LosslessBackend::RleHuffman => {
            let encoded = unhuffman_stage(bytes, table_mode, shared)?;
            let _p = prof::probe(Kernel::Rle, std::mem::size_of_val(encoded.as_slice()));
            rle_decode(&encoded, zero_code).ok_or_else(|| SzError::CorruptStream("rle: malformed run stream".into()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ErrorBound;
    use crate::metrics;

    fn wavy(dims: Vec<usize>) -> Dataset<f32> {
        Dataset::from_fn(dims, |i| {
            let x = i.iter().enumerate().map(|(d, &v)| (v as f32) * 0.11 * (d as f32 + 1.0)).sum::<f32>();
            x.sin() * 10.0 + 0.3 * x
        })
    }

    #[test]
    fn all_pipelines_respect_error_bound() {
        let data = wavy(vec![24, 30, 18]);
        for predictor in PredictorKind::ALL {
            for backend in [LosslessBackend::Huffman, LosslessBackend::HuffmanLz, LosslessBackend::RleHuffman] {
                let cfg = LossyConfig::sz3_abs(1e-3).with_predictor(predictor).with_backend(backend);
                let blob = compress(&data, &cfg).unwrap().blob;
                let out = decompress::<f32>(&blob).unwrap();
                let report = metrics::compare(&data, &out).unwrap();
                assert!(report.within_bound(1e-3), "{predictor:?}/{backend:?}: max={}", report.max_abs_error);
            }
        }
    }

    #[test]
    fn chunked_pipelines_respect_error_bound() {
        let data = wavy(vec![24, 30, 18]);
        for predictor in PredictorKind::ALL {
            let cfg = LossyConfig::sz3_abs(1e-3).with_predictor(predictor).with_threads(4);
            let out = compress(&data, &cfg).unwrap();
            assert!(out.chunks > 1, "threads=4 splits into multiple chunks");
            for threads in [1, 3] {
                let restored = decompress_with_threads::<f32>(&out.blob, threads).unwrap();
                let report = metrics::compare(&data, &restored).unwrap();
                assert!(report.within_bound(1e-3), "{predictor:?}: max={}", report.max_abs_error);
            }
        }
    }

    #[test]
    fn chunked_blob_is_deterministic_across_thread_counts() {
        let data = wavy(vec![40, 12]);
        // Pinning chunk_points pins the layout, so only scheduling differs.
        let cfg = LossyConfig::sz3_abs(1e-3).with_chunk_points(Some(60));
        let serial = compress(&data, &cfg.with_threads(1)).unwrap();
        assert!(serial.chunks > 1);
        for threads in [2, 4, 8] {
            let parallel = compress(&data, &cfg.with_threads(threads)).unwrap();
            assert_eq!(parallel.blob, serial.blob, "threads={threads} changed the bytes");
        }
        let a = decompress::<f32>(&serial.blob).unwrap();
        let b = decompress_with_threads::<f32>(&serial.blob, 4).unwrap();
        assert_eq!(a.values(), b.values(), "decode is thread-count independent");
    }

    #[test]
    fn relative_bound_resolves_at_compression_time() {
        let data = wavy(vec![64, 64]);
        let cfg = LossyConfig::sz3(1e-3); // relative
        let blob = compress(&data, &cfg).unwrap().blob;
        let abs = blob.header().unwrap().abs_eb;
        assert!((abs - 1e-3 * data.value_range()).abs() < 1e-12);
        let out = decompress::<f32>(&blob).unwrap();
        assert!(metrics::compare(&data, &out).unwrap().within_bound(abs));
    }

    #[test]
    fn relative_bound_resolves_against_the_whole_dataset_not_chunks() {
        // A gradient dataset: each chunk sees a narrower range than the
        // whole. The bound must come from the global range.
        let data = Dataset::from_fn(vec![64, 8], |i| (i[0] * 8 + i[1]) as f32);
        let cfg = LossyConfig::sz3(1e-3).with_threads(4);
        let blob = compress(&data, &cfg).unwrap().blob;
        let abs = blob.header().unwrap().abs_eb;
        assert!((abs - 1e-3 * data.value_range()).abs() < 1e-9, "global range, got {abs}");
    }

    #[test]
    fn tighter_bound_means_lower_ratio() {
        let data = wavy(vec![60, 60]);
        let loose = compress(&data, &LossyConfig::sz3(1e-2)).unwrap();
        let tight = compress(&data, &LossyConfig::sz3(1e-5)).unwrap();
        assert!(loose.ratio > tight.ratio, "loose={} tight={}", loose.ratio, tight.ratio);
    }

    #[test]
    fn type_mismatch_is_detected() {
        let data = wavy(vec![16, 16]);
        let blob = compress(&data, &LossyConfig::sz3(1e-3)).unwrap().blob;
        assert!(matches!(decompress::<f64>(&blob), Err(SzError::TypeMismatch { .. })));
    }

    #[test]
    fn f64_round_trip() {
        let data = Dataset::from_fn(vec![40, 40], |i| ((i[0] * i[1]) as f64 * 0.001).cos());
        let cfg = LossyConfig::sz3_abs(1e-6).with_threads(2);
        let blob = compress(&data, &cfg).unwrap().blob;
        let out = decompress::<f64>(&blob).unwrap();
        assert!(metrics::compare(&data, &out).unwrap().within_bound(1e-6));
    }

    #[test]
    fn bin_stats_reflect_smoothness() {
        // Exactly Lorenzo-predictable integer lattice: p0 = 1.
        let smooth = Dataset::from_fn(vec![64, 64], |i| (i[0] + i[1]) as f32);
        let cfg = LossyConfig::lorenzo(1.0).with_error_bound(ErrorBound::Abs(0.25));
        let out = compress(&smooth, &cfg).unwrap();
        // Interior is exactly predicted; the domain boundary (~3 %) is not.
        assert!(out.bin_stats.p0 > 0.95, "p0={}", out.bin_stats.p0);
        // Noisy data lands far from p0 = 1.
        let mut state = 3u64;
        let noise = Dataset::from_fn(vec![64, 64], |_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 40) as f32
        });
        let noisy = compress(&noise, &cfg).unwrap();
        assert!(noisy.bin_stats.p0 < out.bin_stats.p0);
        // Huge random jumps overwhelm the 0.25 bound: most points are stored
        // verbatim rather than quantized.
        assert!(noisy.bin_stats.unpredictable > 0.5);
    }

    #[test]
    fn chunk_table_stats_sum_to_the_aggregate() {
        let data = wavy(vec![50, 20]);
        let cfg = LossyConfig::sz3_abs(1e-3).with_threads(4);
        let out = compress(&data, &cfg).unwrap();
        let (header, mut sections) = out.blob.open().unwrap();
        let table = ChunkTable::decode(sections.next_section().unwrap()).unwrap();
        assert_eq!(table.entries.len(), out.chunks);
        let points: u64 = table.entries.iter().map(|e| e.points).sum();
        assert_eq!(points, 50 * 20);
        let zeros: u64 = table.entries.iter().map(|e| e.zero_bins).sum();
        let p0 = zeros as f64 / points as f64;
        assert!((p0 - out.bin_stats.p0).abs() < 1e-12, "table p0 {p0} vs stats {}", out.bin_stats.p0);
        assert_eq!(header.version, VERSION);
    }

    #[test]
    fn invalid_config_rejected() {
        let data = wavy(vec![8, 8]);
        assert!(compress(&data, &LossyConfig::sz3_abs(0.0)).is_err());
        assert!(compress(&data, &LossyConfig::sz3_abs(1e-3).with_threads(0)).is_err());
    }

    #[test]
    fn corrupt_blob_rejected_gracefully() {
        let data = wavy(vec![16, 16]);
        let blob = compress(&data, &LossyConfig::sz3(1e-3)).unwrap().blob;
        let mut bytes = blob.into_bytes();
        let n = bytes.len();
        bytes.truncate(n - 10);
        // Framing may already reject the truncation; if it parses, the
        // decoder must reject it instead.
        if let Ok(blob) = CompressedBlob::from_bytes(bytes) {
            assert!(decompress::<f32>(&blob).is_err());
        }
    }

    #[test]
    fn corrupt_chunk_is_pinpointed_by_its_crc() {
        let data = wavy(vec![64, 16]);
        let out = compress(&data, &LossyConfig::sz3_abs(1e-3).with_threads(4)).unwrap();
        assert!(out.chunks > 1);
        let mut bytes = out.blob.into_bytes();
        // Flip a bit deep in the chunk region, then re-seal the outer CRC so
        // only the per-chunk checksum can catch it.
        let n = bytes.len();
        bytes[n - 20] ^= 0x10;
        let body = n - 4;
        let crc = crate::checksum::crc32(&bytes[..body]);
        bytes[body..].copy_from_slice(&crc.to_le_bytes());
        let blob = CompressedBlob::from_bytes(bytes).unwrap();
        match decompress::<f32>(&blob) {
            Err(SzError::CorruptStream(msg)) => assert!(msg.contains("CRC"), "unexpected message: {msg}"),
            other => panic!("expected per-chunk CRC failure, got {other:?}"),
        }
    }

    #[test]
    fn ratio_accounts_for_header_overhead() {
        let data = wavy(vec![32]);
        let out = compress(&data, &LossyConfig::sz3(1e-3)).unwrap();
        assert_eq!(out.original_bytes, 32 * 4);
        assert!((out.ratio - out.original_bytes as f64 / out.blob.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn section_sizes_account_for_every_byte() {
        let data = wavy(vec![40, 40]);
        let out = compress(&data, &LossyConfig::sz3(1e-3)).unwrap();
        assert_eq!(out.sections.total(), out.blob.len());
        assert!(out.sections.codes > 0, "codes section carries the payload");
        assert!(out.sections.framing > 0, "headers and checksum exist");
        // Smooth data has no unpredictable values.
        assert_eq!(out.sections.unpredictable, 0);
        // Regression pipelines carry side data; interpolation does not.
        let reg = compress(&data, &LossyConfig::sz2(1e-3)).unwrap();
        assert!(reg.sections.side_data > 0);
        let interp = compress(&data, &LossyConfig::sz3(1e-3)).unwrap();
        assert_eq!(interp.sections.side_data, 0);
    }

    #[test]
    fn serial_chunked_framing_overhead_is_within_one_percent_of_v1() {
        // The monolithic v1 layout spent: header + 3 × 8-byte section
        // prefixes + 4-byte trailer. Reconstruct that size analytically and
        // compare with what the single-chunk container actually produced.
        let data = wavy(vec![48, 48, 24]);
        let out = compress(&data, &LossyConfig::sz3_abs(1e-4)).unwrap();
        assert_eq!(out.chunks, 1, "threads=1 is the serial fallback");
        let header_len = 6 + 3 + 8 * 3 + 8 + 2 + 4;
        let v1_len =
            header_len + (8 + out.sections.side_data) + (8 + out.sections.unpredictable) + (8 + out.sections.codes) + 4;
        let v1_ratio = out.original_bytes as f64 / v1_len as f64;
        let drift = (out.ratio - v1_ratio).abs() / v1_ratio;
        assert!(drift < 0.01, "serial container drifts {:.3}% from v1 ratio", drift * 100.0);
    }

    #[test]
    fn abs_bound_constructor_round_trips() {
        let cfg = LossyConfig::sz3_abs(0.5);
        let ErrorBound::Abs(v) = cfg.error_bound else { panic!("expected Abs, got {:?}", cfg.error_bound) };
        assert_eq!(v, 0.5);
    }

    #[test]
    fn streamed_compression_is_byte_identical_and_in_order() {
        let data = wavy(vec![40, 12]);
        let cfg = LossyConfig::sz3_abs(1e-3).with_chunk_points(Some(60));
        let staged = compress(&data, &cfg.with_threads(1)).unwrap();
        assert!(staged.chunks > 1);
        for threads in [1usize, 2, 4] {
            for window in [0usize, 1, 2, 16] {
                let mut indices = Vec::new();
                let mut payload_cat = Vec::new();
                let streamed = compress_streamed(&data, &cfg.with_threads(threads), window, |chunk| {
                    assert_eq!(chunk.total, staged.chunks);
                    assert_eq!(chunk.entry.len, chunk.payload.len());
                    assert_eq!(chunk.entry.crc, crate::checksum::crc32(chunk.payload));
                    indices.push(chunk.index);
                    payload_cat.extend_from_slice(chunk.payload);
                    Ok(())
                })
                .unwrap();
                assert_eq!(streamed.blob, staged.blob, "threads={threads} window={window} changed bytes");
                assert_eq!(indices, (0..staged.chunks).collect::<Vec<_>>(), "chunks arrive in index order");
                // The streamed payloads are exactly the container's chunk
                // region: the blob ends with them plus the 4-byte CRC.
                let bytes = staged.blob.as_bytes();
                let region = &bytes[bytes.len() - 4 - payload_cat.len()..bytes.len() - 4];
                assert_eq!(region, &payload_cat[..]);
            }
        }
    }

    #[test]
    fn streamed_chunks_decode_on_arrival() {
        let data = wavy(vec![48, 10]);
        let cfg = LossyConfig::sz3_abs(1e-3).with_threads(4).with_chunk_points(Some(64));
        let mut restored: Vec<f32> = Vec::new();
        let outcome = compress_streamed(&data, &cfg, 2, |chunk| {
            let shared =
                if chunk.shared_table.is_empty() { None } else { Some(HuffmanTable::deserialize(chunk.shared_table)?) };
            restored.extend(decode_chunk::<f32>(
                chunk.header,
                chunk.dims,
                chunk.index,
                &chunk.entry,
                chunk.payload,
                shared.as_ref(),
            )?);
            Ok(())
        })
        .unwrap();
        let staged = decompress::<f32>(&outcome.blob).unwrap();
        assert_eq!(restored, staged.values(), "per-chunk decode equals whole-blob decode");
    }

    #[test]
    fn streamed_sink_error_aborts_compression() {
        let data = wavy(vec![40, 12]);
        let cfg = LossyConfig::sz3_abs(1e-3).with_threads(2).with_chunk_points(Some(60));
        let err = compress_streamed(&data, &cfg, 1, |chunk| {
            if chunk.index == 1 {
                Err(SzError::CorruptStream("sink rejected".into()))
            } else {
                Ok(())
            }
        });
        match err {
            Err(SzError::CorruptStream(msg)) => assert!(msg.contains("sink rejected")),
            other => panic!("expected the sink error to surface, got {other:?}"),
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shim_matches_compress() {
        let data = wavy(vec![20, 20]);
        let cfg = LossyConfig::sz3_abs(1e-3);
        let a = compress(&data, &cfg).unwrap();
        let b = compress_with_stats(&data, &cfg).unwrap();
        assert_eq!(a.blob, b.blob);
    }
}
