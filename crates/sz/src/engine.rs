//! Chunk-parallel execution engine.
//!
//! The SZ hot path is embarrassingly block-parallel (SZx): a dataset split
//! into independent n-d chunks can be compressed and decompressed by a pool
//! of workers with no cross-chunk state. This module owns the two pieces the
//! codecs share:
//!
//! * [`ChunkLayout`] — the deterministic split of a row-major dataset into
//!   contiguous slabs along dimension 0 (the slowest-varying axis), so a
//!   chunk is a plain sub-slice of the value buffer and keeps the dataset's
//!   rank (predictors see real n-d structure, not a flattened stream).
//! * `parallel_map` — a bounded scoped worker pool (crossbeam scope +
//!   atomic work index, the same shape as `ocelot`'s file-level executor)
//!   whose results are collected *by index*, making the assembled output
//!   byte-identical regardless of worker count.

use crossbeam::thread;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// How many chunks each worker should get on average when the chunk size is
/// derived from the thread count (slack for load balancing: a straggler slab
/// only delays its worker by one slab, not the whole run).
const CHUNKS_PER_THREAD: usize = 2;

/// Deterministic split of a row-major shape into row slabs.
///
/// The layout depends only on the shape and the requested chunk size — never
/// on the worker count — unless the chunk size itself is derived from
/// `threads` (the `chunk_points: None` default). Pinning `chunk_points`
/// therefore pins the output bytes across thread counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkLayout {
    dims: Vec<usize>,
    /// Rows (dimension-0 indices) per chunk; the last chunk may be shorter.
    chunk_rows: usize,
    /// Number of points in one row (product of the trailing dimensions).
    row_points: usize,
    n_chunks: usize,
}

impl ChunkLayout {
    /// Plans a layout for `dims` given the configured `threads` and optional
    /// `chunk_points` target.
    ///
    /// Rules, in order:
    /// * explicit `chunk_points` wins: slab height is the smallest row count
    ///   holding at least that many points (so an oversized target yields a
    ///   single chunk covering the whole dataset);
    /// * `threads == 1` compresses everything as one chunk (serial
    ///   fallback, stream-compatible with the monolithic pipeline);
    /// * otherwise the rows are split into about
    ///   `threads × CHUNKS_PER_THREAD` slabs.
    ///
    /// A dataset with a single row can never split (chunks cover whole
    /// rows), so it degrades to one chunk.
    ///
    /// # Panics
    /// Panics if `dims` is empty, any dimension is zero, or `threads == 0` —
    /// all rejected earlier by config/shape validation.
    pub fn plan(dims: &[usize], threads: usize, chunk_points: Option<usize>) -> Self {
        assert!(!dims.is_empty() && dims.iter().all(|&d| d > 0), "invalid dims {dims:?}");
        assert!(threads > 0, "thread count must be positive");
        let rows = dims[0];
        let row_points: usize = dims[1..].iter().product::<usize>().max(1);
        let chunk_rows = match chunk_points {
            Some(points) => points.max(1).div_ceil(row_points).clamp(1, rows),
            None if threads == 1 => rows,
            None => {
                let target_chunks = (threads * CHUNKS_PER_THREAD).min(rows);
                rows.div_ceil(target_chunks)
            }
        };
        let n_chunks = rows.div_ceil(chunk_rows);
        ChunkLayout { dims: dims.to_vec(), chunk_rows, row_points, n_chunks }
    }

    /// Reconstructs the layout recorded in a version-3 chunk table.
    pub fn from_chunk_rows(dims: &[usize], chunk_rows: usize) -> Self {
        assert!(!dims.is_empty() && chunk_rows > 0, "invalid stored layout");
        let row_points: usize = dims[1..].iter().product::<usize>().max(1);
        let n_chunks = dims[0].div_ceil(chunk_rows);
        ChunkLayout { dims: dims.to_vec(), chunk_rows, row_points, n_chunks }
    }

    /// Number of chunks.
    pub fn n_chunks(&self) -> usize {
        self.n_chunks
    }

    /// Rows per full chunk (the stored `chunk_rows`).
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Shape of chunk `i` (same rank as the dataset, shorter dimension 0).
    pub fn chunk_dims(&self, i: usize) -> Vec<usize> {
        let mut dims = self.dims.clone();
        dims[0] = self.rows_in_chunk(i);
        dims
    }

    /// Number of rows in chunk `i` (only the last chunk may be short).
    pub fn rows_in_chunk(&self, i: usize) -> usize {
        assert!(i < self.n_chunks, "chunk {i} out of {}", self.n_chunks);
        let start = i * self.chunk_rows;
        self.chunk_rows.min(self.dims[0] - start)
    }

    /// Number of points in chunk `i`.
    pub fn points_in_chunk(&self, i: usize) -> usize {
        self.rows_in_chunk(i) * self.row_points
    }

    /// Half-open range of chunk `i` within the dataset's linearized values.
    pub fn value_range(&self, i: usize) -> std::ops::Range<usize> {
        let start = i * self.chunk_rows * self.row_points;
        start..start + self.points_in_chunk(i)
    }
}

/// Runs `work(0..n)` on up to `threads` scoped workers and returns the
/// results in index order. Work is claimed from a shared atomic counter, so
/// stragglers do not idle other workers; output order (and therefore any
/// bytes assembled from it) is independent of scheduling.
pub(crate) fn parallel_map<R, F>(n: usize, threads: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return (0..n).map(work).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = work(i);
                slots.lock()[i] = Some(r);
            });
        }
    })
    .expect("worker panics propagate via the scope");
    slots.into_inner().into_iter().map(|r| r.expect("every index visited")).collect()
}

/// Back-pressure gate shared by the windowed pool: `consumed` counts chunks
/// the in-order consumer has retired; a worker may start chunk `i` only once
/// `i < consumed + window`, so at most `window` chunks are ever past the
/// gate but not yet consumed.
struct WindowGate {
    consumed: std::sync::Mutex<usize>,
    cv: std::sync::Condvar,
}

impl WindowGate {
    fn new() -> Self {
        WindowGate { consumed: std::sync::Mutex::new(0), cv: std::sync::Condvar::new() }
    }

    /// Blocks until chunk `i` fits in the window; returns seconds stalled.
    fn admit(&self, i: usize, window: usize) -> f64 {
        let mut consumed = self.consumed.lock().expect("gate lock");
        if i < *consumed + window {
            return 0.0;
        }
        let t0 = std::time::Instant::now();
        while i >= *consumed + window {
            consumed = self.cv.wait(consumed).expect("gate wait");
        }
        t0.elapsed().as_secs_f64()
    }

    fn retire(&self) {
        *self.consumed.lock().expect("gate lock") += 1;
        self.cv.notify_all();
    }
}

/// Runs `work(0..n)` on up to `threads` scoped workers and feeds every
/// result — in index order — to `consume` on the calling thread, holding at
/// most `window` results in flight (claimed by a worker but not yet
/// consumed). `window == 0` means unbounded (workers never stall).
///
/// This is the streaming counterpart of [`parallel_map`]: instead of
/// collecting everything and returning, each finished chunk is handed to the
/// consumer as soon as all lower-indexed chunks have been, so a downstream
/// stage (transfer, decode) can overlap with upstream work while memory
/// stays `O(window)` rather than `O(n)`.
///
/// Back-pressure stalls are recorded via the global obs handle
/// (`ocelot_stream_stall_total` / `ocelot_stream_stall_seconds`), and the
/// number of in-flight chunks is mirrored into `ocelot_stream_inflight`.
pub(crate) fn parallel_map_windowed<R, F, C>(n: usize, threads: usize, window: usize, work: F, mut consume: C)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    C: FnMut(usize, R),
{
    if n == 0 {
        return;
    }
    let obs = ocelot_obs::global();
    let threads = threads.clamp(1, n);
    if threads == 1 {
        // One worker can never have more than one chunk in flight, so the
        // window is trivially respected and no stall can occur.
        for i in 0..n {
            consume(i, work(i));
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let gate = WindowGate::new();
    let started = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    thread::scope(|scope| {
        let (next, gate, started, work, obs) = (&next, &gate, &started, &work, &obs);
        for _ in 0..threads {
            let tx = tx.clone();
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if window > 0 {
                    let stalled = gate.admit(i, window);
                    if stalled > 0.0 {
                        obs.inc("ocelot_stream_stall_total", "Chunk starts delayed by the stream window");
                        obs.observe(
                            "ocelot_stream_stall_seconds",
                            "Back-pressure stall before a chunk could enter the stream window",
                            stalled,
                        );
                    }
                }
                let inflight = started.fetch_add(1, Ordering::Relaxed) + 1;
                obs.set_gauge(
                    "ocelot_stream_inflight",
                    "Chunks claimed by stream workers but not yet consumed in order",
                    (inflight - gate_consumed(gate)) as f64,
                );
                let r = work(i);
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // In-order consumer on the calling thread: buffer out-of-order
        // arrivals (at most `window` of them when bounded) and drain runs.
        let mut pending: std::collections::BTreeMap<usize, R> = std::collections::BTreeMap::new();
        let mut next_out = 0usize;
        while next_out < n {
            let Ok((i, r)) = rx.recv() else { break };
            pending.insert(i, r);
            while let Some(r) = pending.remove(&next_out) {
                consume(next_out, r);
                next_out += 1;
                gate.retire();
            }
        }
    })
    .expect("worker panics propagate via the scope");
}

/// Current retired count of the gate (for the in-flight gauge).
fn gate_consumed(gate: &WindowGate) -> usize {
    *gate.consumed.lock().expect("gate lock")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_layout_is_one_chunk() {
        let l = ChunkLayout::plan(&[100, 30], 1, None);
        assert_eq!(l.n_chunks(), 1);
        assert_eq!(l.chunk_dims(0), vec![100, 30]);
        assert_eq!(l.value_range(0), 0..3000);
    }

    #[test]
    fn threads_derive_chunk_count() {
        let l = ChunkLayout::plan(&[100], 4, None);
        assert_eq!(l.n_chunks(), 8, "2 chunks per worker");
        assert_eq!(l.chunk_rows(), 13);
        assert_eq!(l.rows_in_chunk(7), 100 - 7 * 13);
    }

    #[test]
    fn explicit_chunk_points_pin_the_layout() {
        let a = ChunkLayout::plan(&[64, 10], 1, Some(100));
        let b = ChunkLayout::plan(&[64, 10], 8, Some(100));
        assert_eq!(a, b, "layout ignores threads when chunk_points is set");
        assert_eq!(a.chunk_rows(), 10, "ceil(100/10) rows");
    }

    #[test]
    fn oversized_chunk_points_become_one_chunk() {
        let l = ChunkLayout::plan(&[8, 8], 4, Some(1 << 30));
        assert_eq!(l.n_chunks(), 1);
    }

    #[test]
    fn one_point_chunks_at_the_edge() {
        let l = ChunkLayout::plan(&[5], 1, Some(2));
        assert_eq!(l.n_chunks(), 3);
        assert_eq!(l.points_in_chunk(2), 1, "1-element edge chunk");
        assert_eq!(l.value_range(2), 4..5);
    }

    #[test]
    fn single_row_cannot_split() {
        let l = ChunkLayout::plan(&[1, 64, 64], 8, None);
        assert_eq!(l.n_chunks(), 1);
    }

    #[test]
    fn ranges_tile_the_dataset_exactly() {
        for (dims, threads, cp) in
            [(vec![37, 5], 3, None), (vec![16], 8, Some(3)), (vec![9, 2, 4], 2, Some(1)), (vec![4], 16, None)]
        {
            let l = ChunkLayout::plan(&dims, threads, cp);
            let total: usize = dims.iter().product();
            let mut covered = 0usize;
            for i in 0..l.n_chunks() {
                let r = l.value_range(i);
                assert_eq!(r.start, covered, "chunks are contiguous");
                assert_eq!(r.len(), l.points_in_chunk(i));
                covered = r.end;
            }
            assert_eq!(covered, total, "chunks cover every point of {dims:?}");
        }
    }

    #[test]
    fn stored_layout_round_trips() {
        let l = ChunkLayout::plan(&[100, 7], 4, None);
        let back = ChunkLayout::from_chunk_rows(&[100, 7], l.chunk_rows());
        assert_eq!(back, l);
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        for threads in [1, 2, 4, 8] {
            let out = parallel_map(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_tiny_inputs() {
        assert!(parallel_map(0, 4, |i| i).is_empty());
        assert_eq!(parallel_map(1, 8, |i| i + 1), vec![1]);
    }

    #[test]
    fn windowed_map_consumes_in_order_at_every_window() {
        for threads in [1, 2, 4, 8] {
            for window in [0, 1, 2, 3, 64] {
                let mut seen = Vec::new();
                parallel_map_windowed(
                    37,
                    threads,
                    window,
                    |i| i * 3,
                    |i, r| {
                        assert_eq!(r, i * 3, "result arrives with its own index");
                        seen.push(i);
                    },
                );
                assert_eq!(seen, (0..37).collect::<Vec<_>>(), "threads={threads} window={window}");
            }
        }
    }

    #[test]
    fn windowed_map_survives_a_slow_consumer_at_window_one() {
        // The tightest window with the most workers: every worker but one
        // stalls on the gate while the consumer dawdles. Must not deadlock.
        let mut sum = 0usize;
        parallel_map_windowed(
            16,
            8,
            1,
            |i| i,
            |_, r| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                sum += r;
            },
        );
        assert_eq!(sum, (0..16).sum());
    }

    #[test]
    fn windowed_map_handles_empty_input() {
        parallel_map_windowed(0, 4, 2, |i| i, |_, _| panic!("no chunks to consume"));
    }
}
