//! Self-describing compressed-blob framing.
//!
//! A blob carries everything required for decompression: scalar type, shape,
//! resolved absolute error bound, pipeline configuration, and the payload.
//! Two on-wire layouts exist:
//!
//! * **Version 2** (legacy, read-only): a fixed little-endian header followed
//!   by length-prefixed sections and a CRC-32 trailer. Every pre-chunking
//!   blob is version 2; [`CompressedBlob::from_bytes`] still accepts them.
//! * **Version 3** (legacy, read-only, chunked container): the same fixed
//!   header, then one length-prefixed *chunk table* section (slab height,
//!   per-chunk payload lengths, CRC-32s, and quantization statistics), then
//!   the raw chunk payloads back to back, then the whole-blob CRC-32 trailer.
//!   Chunks are self-contained and decode independently — and therefore in
//!   parallel.
//! * **Version 4** (current): version 3 plus shared Huffman tables. Each
//!   chunk-table row gains a one-byte *table mode* tag ([`TABLE_MODE_LOCAL`]
//!   embeds a per-chunk code-length table as before; [`TABLE_MODE_SHARED`]
//!   references the job-wide table), and a second length-prefixed section
//!   carrying the shared canonical code-length table (empty when no chunk
//!   uses it) sits between the chunk table and the payloads.
//!
//! Unknown versions are rejected with [`SzError::UnsupportedVersion`].

use crate::checksum::{crc32, Crc32};
use crate::config::{LosslessBackend, PredictorKind};
use crate::error::SzError;

/// Magic bytes at the start of every blob.
pub const MAGIC: [u8; 4] = *b"OCSZ";
/// Current format version: the chunked container with shared Huffman tables.
pub const VERSION: u16 = 4;
/// Legacy chunked container without the shared-table section or per-chunk
/// table-mode tags (still decodable).
pub const VERSION_V3: u16 = 3;
/// Legacy monolithic-section format (still decodable). Version 2 added the
/// CRC-32 integrity trailer; version 3 added the chunk table.
pub const VERSION_V1: u16 = 2;

/// Chunk-table tag: the chunk payload embeds its own code-length table.
pub const TABLE_MODE_LOCAL: u8 = 0;
/// Chunk-table tag: the chunk's code stream uses the blob's shared table.
pub const TABLE_MODE_SHARED: u8 = 1;

/// Size of the CRC-32 trailer in bytes.
const TRAILER: usize = 4;

/// Compression codec family recorded in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecFamily {
    /// Prediction-based pipeline (SZ model).
    Prediction,
    /// Transform-based codec (ZFP model).
    Transform,
}

impl CodecFamily {
    fn to_u8(self) -> u8 {
        match self {
            CodecFamily::Prediction => 0,
            CodecFamily::Transform => 1,
        }
    }
    fn from_u8(v: u8) -> Result<Self, SzError> {
        match v {
            0 => Ok(CodecFamily::Prediction),
            1 => Ok(CodecFamily::Transform),
            _ => Err(SzError::CorruptStream(format!("unknown codec tag {v}"))),
        }
    }
}

/// Parsed blob header.
#[derive(Debug, Clone, PartialEq)]
pub struct BlobHeader {
    /// On-wire format version ([`VERSION`] for freshly written blobs).
    pub version: u16,
    /// Codec family.
    pub family: CodecFamily,
    /// Scalar type name (`"f32"` or `"f64"`).
    pub dtype: &'static str,
    /// Dataset shape.
    pub dims: Vec<usize>,
    /// Resolved absolute error bound used at compression time.
    pub abs_eb: f64,
    /// Predictor (prediction codec only; `Lorenzo` otherwise).
    pub predictor: PredictorKind,
    /// Lossless backend (prediction codec only; `Huffman` otherwise).
    pub backend: LosslessBackend,
    /// Quantizer radius.
    pub quant_radius: u32,
}

fn dtype_tag(name: &str) -> Result<u8, SzError> {
    match name {
        "f32" => Ok(0),
        "f64" => Ok(1),
        other => Err(SzError::CorruptStream(format!("unknown dtype {other}"))),
    }
}

fn dtype_name(tag: u8) -> Result<&'static str, SzError> {
    match tag {
        0 => Ok("f32"),
        1 => Ok("f64"),
        other => Err(SzError::CorruptStream(format!("unknown dtype tag {other}"))),
    }
}

fn predictor_from_tag(tag: u8) -> Result<PredictorKind, SzError> {
    PredictorKind::ALL
        .iter()
        .copied()
        .find(|p| p.id() == tag)
        .ok_or_else(|| SzError::CorruptStream(format!("unknown predictor tag {tag}")))
}

fn backend_tag(b: LosslessBackend) -> u8 {
    match b {
        LosslessBackend::Huffman => 0,
        LosslessBackend::HuffmanLz => 1,
        LosslessBackend::RleHuffman => 2,
    }
}

fn backend_from_tag(tag: u8) -> Result<LosslessBackend, SzError> {
    match tag {
        0 => Ok(LosslessBackend::Huffman),
        1 => Ok(LosslessBackend::HuffmanLz),
        2 => Ok(LosslessBackend::RleHuffman),
        other => Err(SzError::CorruptStream(format!("unknown backend tag {other}"))),
    }
}

/// One row of the version-3 chunk table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Compressed payload length in bytes.
    pub len: usize,
    /// CRC-32 of the chunk payload (checked before the chunk is decoded, so
    /// a corrupt chunk is pinpointed instead of blamed on the whole blob).
    pub crc: u32,
    /// Number of data points the chunk covers.
    pub points: u64,
    /// Quantization codes that landed in the zero bin (exactly predicted).
    pub zero_bins: u64,
    /// Points stored verbatim because their bin overflowed the quantizer.
    pub unpredictable: u64,
    /// How the chunk's code stream is entropy-coded: [`TABLE_MODE_LOCAL`] or
    /// [`TABLE_MODE_SHARED`]. Version-3 tables decode as all-local.
    pub table_mode: u8,
}

/// Entry size without the version-4 table-mode byte.
const CHUNK_ENTRY_BYTES_V3: usize = 8 + 4 + 8 + 8 + 8;
const CHUNK_ENTRY_BYTES: usize = CHUNK_ENTRY_BYTES_V3 + 1;

/// Version-3 chunk table: how a dataset was split into row slabs and where
/// each slab's compressed payload lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkTable {
    /// Slab height along dimension 0 (the slowest-varying axis); the last
    /// chunk may be shorter.
    pub chunk_rows: usize,
    /// Per-chunk metadata, in slab order.
    pub entries: Vec<ChunkEntry>,
}

impl ChunkTable {
    /// Serializes the table into its section payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.entries.len() * CHUNK_ENTRY_BYTES);
        out.extend_from_slice(&(self.chunk_rows as u64).to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for e in &self.entries {
            out.extend_from_slice(&(e.len as u64).to_le_bytes());
            out.extend_from_slice(&e.crc.to_le_bytes());
            out.extend_from_slice(&e.points.to_le_bytes());
            out.extend_from_slice(&e.zero_bins.to_le_bytes());
            out.extend_from_slice(&e.unpredictable.to_le_bytes());
            out.push(e.table_mode);
        }
        out
    }

    /// Parses a table section. The entry width is self-describing: version-4
    /// tables carry a table-mode byte per entry, version-3 tables do not and
    /// decode as all-[`TABLE_MODE_LOCAL`].
    ///
    /// # Errors
    /// Returns [`SzError::CorruptStream`] if the section is truncated or the
    /// chunk count is implausible.
    pub fn decode(bytes: &[u8]) -> Result<Self, SzError> {
        if bytes.len() < 12 {
            return Err(SzError::CorruptStream("truncated chunk table".into()));
        }
        let chunk_rows = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")) as usize;
        let n = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
        let entry_bytes = if bytes.len() == 12 + n * CHUNK_ENTRY_BYTES {
            CHUNK_ENTRY_BYTES
        } else if bytes.len() == 12 + n * CHUNK_ENTRY_BYTES_V3 {
            CHUNK_ENTRY_BYTES_V3
        } else {
            return Err(SzError::CorruptStream(format!(
                "chunk table length {} does not match {n} entries",
                bytes.len()
            )));
        };
        if chunk_rows == 0 || n == 0 {
            return Err(SzError::CorruptStream("empty chunk table".into()));
        }
        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            let b = &bytes[12 + i * entry_bytes..12 + (i + 1) * entry_bytes];
            let table_mode = if entry_bytes == CHUNK_ENTRY_BYTES { b[36] } else { TABLE_MODE_LOCAL };
            if table_mode > TABLE_MODE_SHARED {
                return Err(SzError::CorruptStream(format!("unknown table mode {table_mode}")));
            }
            entries.push(ChunkEntry {
                len: u64::from_le_bytes(b[..8].try_into().expect("8 bytes")) as usize,
                crc: u32::from_le_bytes(b[8..12].try_into().expect("4 bytes")),
                points: u64::from_le_bytes(b[12..20].try_into().expect("8 bytes")),
                zero_bins: u64::from_le_bytes(b[20..28].try_into().expect("8 bytes")),
                unpredictable: u64::from_le_bytes(b[28..36].try_into().expect("8 bytes")),
                table_mode,
            });
        }
        Ok(ChunkTable { chunk_rows, entries })
    }

    /// Byte offsets of each chunk payload within the chunk region.
    pub fn offsets(&self) -> Vec<usize> {
        let mut offsets = Vec::with_capacity(self.entries.len());
        let mut off = 0usize;
        for e in &self.entries {
            offsets.push(off);
            off += e.len;
        }
        offsets
    }

    /// Total bytes of all chunk payloads.
    pub fn payload_len(&self) -> usize {
        self.entries.iter().map(|e| e.len).sum()
    }
}

/// Appends a length-prefixed part to a byte buffer (the framing used both
/// for top-level blob sections and for the sub-sections inside a prediction
/// chunk payload).
pub(crate) fn write_framed(out: &mut Vec<u8>, part: &[u8]) {
    out.extend_from_slice(&(part.len() as u64).to_le_bytes());
    out.extend_from_slice(part);
}

/// Incremental blob writer. The CRC-32 trailer is folded in as bytes are
/// appended, so [`BlobWriter::finish`] costs nothing instead of re-scanning
/// the whole buffer.
#[derive(Debug)]
pub struct BlobWriter {
    bytes: Vec<u8>,
    crc: Crc32,
}

impl BlobWriter {
    /// Starts a blob with the given header, writing `header.version` on the
    /// wire (producers set it to [`VERSION`]).
    ///
    /// # Errors
    /// Returns [`SzError::CorruptStream`] for an unknown dtype name (cannot
    /// occur for headers built from [`crate::value::ScalarValue`] types).
    pub fn new(header: &BlobHeader) -> Result<Self, SzError> {
        let mut bytes = Vec::with_capacity(64);
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&header.version.to_le_bytes());
        bytes.push(header.family.to_u8());
        bytes.push(dtype_tag(header.dtype)?);
        bytes.push(header.dims.len() as u8);
        for &d in &header.dims {
            bytes.extend_from_slice(&(d as u64).to_le_bytes());
        }
        bytes.extend_from_slice(&header.abs_eb.to_le_bytes());
        bytes.push(header.predictor.id());
        bytes.push(backend_tag(header.backend));
        bytes.extend_from_slice(&header.quant_radius.to_le_bytes());
        let mut crc = Crc32::new();
        crc.update(&bytes);
        Ok(BlobWriter { bytes, crc })
    }

    /// Reserves room for payload bytes still to come.
    pub fn reserve(&mut self, additional: usize) -> &mut Self {
        self.bytes.reserve(additional);
        self
    }

    /// Appends a length-prefixed section.
    pub fn section(&mut self, data: &[u8]) -> &mut Self {
        let prefix = (data.len() as u64).to_le_bytes();
        self.crc.update(&prefix);
        self.crc.update(data);
        self.bytes.extend_from_slice(&prefix);
        self.bytes.extend_from_slice(data);
        self
    }

    /// Appends raw bytes with no length prefix (chunk payloads, whose
    /// lengths live in the chunk table).
    pub fn raw(&mut self, data: &[u8]) -> &mut Self {
        self.crc.update(data);
        self.bytes.extend_from_slice(data);
        self
    }

    /// Finishes the blob, appending the CRC-32 integrity trailer.
    pub fn finish(self) -> CompressedBlob {
        let mut bytes = self.bytes;
        bytes.extend_from_slice(&self.crc.finish().to_le_bytes());
        CompressedBlob { bytes }
    }
}

/// An owned, validated compressed blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedBlob {
    bytes: Vec<u8>,
}

impl CompressedBlob {
    /// Wraps raw bytes, validating magic, version, and the CRC-32 trailer
    /// (so corruption acquired in transit is caught before decompression
    /// touches the payload).
    ///
    /// # Errors
    /// Returns [`SzError::CorruptStream`] for bad magic or a checksum
    /// mismatch, and [`SzError::UnsupportedVersion`] for a version we cannot
    /// read (neither [`VERSION`] nor the legacy [`VERSION_V3`] /
    /// [`VERSION_V1`]).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, SzError> {
        if bytes.len() < 6 + TRAILER || bytes[..4] != MAGIC {
            return Err(SzError::CorruptStream("missing OCSZ magic".into()));
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != VERSION && version != VERSION_V3 && version != VERSION_V1 {
            return Err(SzError::UnsupportedVersion(version));
        }
        let blob = CompressedBlob { bytes };
        blob.verify()?;
        Ok(blob)
    }

    /// Re-verifies the CRC-32 trailer (e.g. after a transfer hop).
    ///
    /// # Errors
    /// Returns [`SzError::CorruptStream`] on mismatch.
    pub fn verify(&self) -> Result<(), SzError> {
        let n = self.bytes.len();
        if n < TRAILER {
            return Err(SzError::CorruptStream("blob shorter than its checksum".into()));
        }
        let stored = u32::from_le_bytes(self.bytes[n - TRAILER..].try_into().expect("4 bytes"));
        let actual = crc32(&self.bytes[..n - TRAILER]);
        if stored != actual {
            return Err(SzError::CorruptStream(format!(
                "checksum mismatch: stored {stored:08x}, computed {actual:08x}"
            )));
        }
        Ok(())
    }

    /// The raw serialized bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Size in bytes (what actually travels over the wire).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the blob is empty (never true for a valid blob).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Consumes the blob, returning its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Parses the header and returns it plus a reader positioned at the
    /// first section.
    ///
    /// # Errors
    /// Returns [`SzError::CorruptStream`] if the header is truncated or
    /// contains invalid tags, and [`SzError::UnsupportedVersion`] for an
    /// unknown version.
    pub fn open(&self) -> Result<(BlobHeader, SectionReader<'_>), SzError> {
        let b = &self.bytes;
        if b.len() < 6 {
            return Err(SzError::CorruptStream("truncated blob header".into()));
        }
        let version = u16::from_le_bytes([b[4], b[5]]);
        if version != VERSION && version != VERSION_V3 && version != VERSION_V1 {
            return Err(SzError::UnsupportedVersion(version));
        }
        let mut pos = 6usize; // magic + version
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], SzError> {
            if *pos + n > b.len() {
                return Err(SzError::CorruptStream("truncated blob header".into()));
            }
            let s = &b[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let family = CodecFamily::from_u8(take(&mut pos, 1)?[0])?;
        let dtype = dtype_name(take(&mut pos, 1)?[0])?;
        let ndim = take(&mut pos, 1)?[0] as usize;
        if ndim == 0 || ndim > 8 {
            return Err(SzError::CorruptStream(format!("invalid rank {ndim}")));
        }
        let mut dims = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            let d = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes")) as usize;
            if d == 0 {
                return Err(SzError::CorruptStream("zero-sized dimension".into()));
            }
            dims.push(d);
        }
        let abs_eb = f64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"));
        let predictor = predictor_from_tag(take(&mut pos, 1)?[0])?;
        let backend = backend_from_tag(take(&mut pos, 1)?[0])?;
        let quant_radius = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
        let header = BlobHeader { version, family, dtype, dims, abs_eb, predictor, backend, quant_radius };
        // Sections end where the CRC trailer begins.
        let body_end = b.len().saturating_sub(TRAILER).max(pos);
        Ok((header, SectionReader { bytes: &b[..body_end], pos }))
    }

    /// Parses just the header (convenience).
    ///
    /// # Errors
    /// Same as [`CompressedBlob::open`].
    pub fn header(&self) -> Result<BlobHeader, SzError> {
        Ok(self.open()?.0)
    }
}

/// Sequential reader over the length-prefixed sections of a blob.
#[derive(Debug)]
pub struct SectionReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SectionReader<'a> {
    /// Reads nested sections out of a standalone byte slice (the framing
    /// inside a prediction chunk payload).
    pub fn over(bytes: &'a [u8]) -> Self {
        SectionReader { bytes, pos: 0 }
    }

    /// Reads the next section.
    ///
    /// # Errors
    /// Returns [`SzError::CorruptStream`] if the section is truncated.
    pub fn next_section(&mut self) -> Result<&'a [u8], SzError> {
        if self.pos + 8 > self.bytes.len() {
            return Err(SzError::CorruptStream("missing section length".into()));
        }
        let len = u64::from_le_bytes(self.bytes[self.pos..self.pos + 8].try_into().expect("8 bytes")) as usize;
        self.pos += 8;
        if self.pos + len > self.bytes.len() {
            return Err(SzError::CorruptStream("truncated section".into()));
        }
        let s = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }

    /// Returns everything from the current position to the end of the body
    /// (the chunk-payload region of a version-3 blob).
    pub fn rest(&self) -> &'a [u8] {
        &self.bytes[self.pos..]
    }

    /// Whether all bytes have been consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> BlobHeader {
        BlobHeader {
            version: VERSION,
            family: CodecFamily::Prediction,
            dtype: "f32",
            dims: vec![10, 20],
            abs_eb: 1e-3,
            predictor: PredictorKind::InterpCubic,
            backend: LosslessBackend::HuffmanLz,
            quant_radius: 1 << 15,
        }
    }

    #[test]
    fn header_round_trip() {
        let h = sample_header();
        let mut w = BlobWriter::new(&h).unwrap();
        w.section(b"abc").section(b"").section(b"defgh");
        let blob = w.finish();
        let (back, mut r) = blob.open().unwrap();
        assert_eq!(back, h);
        assert_eq!(r.next_section().unwrap(), b"abc");
        assert_eq!(r.next_section().unwrap(), b"");
        assert_eq!(r.next_section().unwrap(), b"defgh");
        assert!(r.at_end());
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(CompressedBlob::from_bytes(b"NOPE\x01\x00".to_vec()).is_err());
        assert!(CompressedBlob::from_bytes(vec![]).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&99u16.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 8]); // room for a would-be trailer
        match CompressedBlob::from_bytes(bytes) {
            Err(SzError::UnsupportedVersion(99)) => {}
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn legacy_version_is_accepted_by_framing() {
        let mut h = sample_header();
        h.version = VERSION_V1;
        let mut w = BlobWriter::new(&h).unwrap();
        w.section(b"legacy sections");
        let blob = w.finish();
        let reparsed = CompressedBlob::from_bytes(blob.clone().into_bytes()).unwrap();
        assert_eq!(reparsed.header().unwrap().version, VERSION_V1);
    }

    #[test]
    fn truncation_is_caught_by_the_checksum() {
        let h = sample_header();
        let mut w = BlobWriter::new(&h).unwrap();
        w.section(b"hello world");
        let mut bytes = w.finish().into_bytes();
        bytes.truncate(bytes.len() - 4);
        assert!(matches!(CompressedBlob::from_bytes(bytes), Err(SzError::CorruptStream(_))));
    }

    #[test]
    fn bit_flips_are_caught_by_the_checksum() {
        let h = sample_header();
        let mut w = BlobWriter::new(&h).unwrap();
        w.section(b"payload payload payload");
        let blob = w.finish();
        assert!(blob.verify().is_ok());
        let mut bytes = blob.into_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(CompressedBlob::from_bytes(bytes), Err(SzError::CorruptStream(_))));
    }

    #[test]
    fn blob_round_trips_through_bytes() {
        let h = sample_header();
        let blob = BlobWriter::new(&h).unwrap().finish();
        let bytes = blob.clone().into_bytes();
        assert_eq!(CompressedBlob::from_bytes(bytes).unwrap(), blob);
    }

    #[test]
    fn chunk_table_round_trips() {
        let table = ChunkTable {
            chunk_rows: 7,
            entries: vec![
                ChunkEntry {
                    len: 100,
                    crc: 0xDEAD_BEEF,
                    points: 70,
                    zero_bins: 60,
                    unpredictable: 1,
                    table_mode: TABLE_MODE_SHARED,
                },
                ChunkEntry {
                    len: 3,
                    crc: 42,
                    points: 30,
                    zero_bins: 0,
                    unpredictable: 30,
                    table_mode: TABLE_MODE_LOCAL,
                },
            ],
        };
        let back = ChunkTable::decode(&table.encode()).unwrap();
        assert_eq!(back, table);
        assert_eq!(back.offsets(), vec![0, 100]);
        assert_eq!(back.payload_len(), 103);
    }

    #[test]
    fn v3_chunk_table_without_mode_bytes_decodes_as_local() {
        // A version-3 table has 36-byte entries and no table-mode column.
        let entries = [(100usize, 0xDEAD_BEEFu32, 70u64, 60u64, 1u64), (3, 42, 30, 0, 30)];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&7u64.to_le_bytes());
        bytes.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for &(len, crc, points, zero_bins, unpredictable) in &entries {
            bytes.extend_from_slice(&(len as u64).to_le_bytes());
            bytes.extend_from_slice(&crc.to_le_bytes());
            bytes.extend_from_slice(&points.to_le_bytes());
            bytes.extend_from_slice(&zero_bins.to_le_bytes());
            bytes.extend_from_slice(&unpredictable.to_le_bytes());
        }
        let table = ChunkTable::decode(&bytes).unwrap();
        assert_eq!(table.chunk_rows, 7);
        assert_eq!(table.entries.len(), 2);
        assert!(table.entries.iter().all(|e| e.table_mode == TABLE_MODE_LOCAL));
        assert_eq!(table.entries[0].len, 100);
        assert_eq!(table.entries[1].unpredictable, 30);
    }

    #[test]
    fn chunk_table_rejects_malformed_input() {
        assert!(ChunkTable::decode(&[]).is_err());
        let table = ChunkTable {
            chunk_rows: 1,
            entries: vec![ChunkEntry {
                len: 1,
                crc: 0,
                points: 1,
                zero_bins: 0,
                unpredictable: 0,
                table_mode: TABLE_MODE_LOCAL,
            }],
        };
        let bytes = table.encode();
        // Two bytes short matches neither the v4 nor the v3 entry width.
        assert!(ChunkTable::decode(&bytes[..bytes.len() - 2]).is_err());
        // A v4-width table with an unknown mode tag is rejected.
        let mut bad = table.encode();
        let n = bad.len();
        bad[n - 1] = 9;
        assert!(ChunkTable::decode(&bad).is_err());
        // Zero chunks is never valid.
        let empty = ChunkTable { chunk_rows: 4, entries: vec![] };
        assert!(ChunkTable::decode(&empty.encode()).is_err());
    }
}
