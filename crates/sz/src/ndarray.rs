//! Dense N-dimensional dataset container used throughout the framework.
//!
//! Scientific fields are row-major dense arrays of 1–3 dimensions (the paper's
//! applications are 2-D climate fields and 3-D simulation snapshots). The
//! container is intentionally simple: a shape vector plus a flat value buffer.

use crate::error::SzError;
use crate::value::ScalarValue;

/// A dense, row-major N-dimensional array of floating-point values.
///
/// The last dimension is the fastest-varying one, matching C ordering and the
/// layout of the binary dataset files the paper's applications produce.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset<T> {
    dims: Vec<usize>,
    data: Vec<T>,
}

/// Borrowed view of a row-major array: a shape plus a value slice, both
/// borrowed from their owner.
///
/// The chunk-parallel hot path hands each worker a `DatasetView` of its row
/// slab so splitting a dataset into chunks copies nothing — a chunk is just
/// a sub-slice of the parent's value buffer under a (shared) shape.
#[derive(Debug, Clone, Copy)]
pub struct DatasetView<'a, T> {
    dims: &'a [usize],
    values: &'a [T],
}

impl<'a, T: ScalarValue> DatasetView<'a, T> {
    /// Creates a view over a shape and a flat row-major slice.
    ///
    /// # Errors
    /// Returns [`SzError::InvalidShape`] under the same conditions as
    /// [`Dataset::new`].
    pub fn new(dims: &'a [usize], values: &'a [T]) -> Result<Self, SzError> {
        if dims.is_empty() {
            return Err(SzError::InvalidShape("dimension list is empty".into()));
        }
        if dims.contains(&0) {
            return Err(SzError::InvalidShape(format!("zero-sized dimension in {dims:?}")));
        }
        let expected: usize = dims.iter().product();
        if expected != values.len() {
            return Err(SzError::InvalidShape(format!(
                "shape {dims:?} holds {expected} elements but buffer has {}",
                values.len()
            )));
        }
        Ok(DatasetView { dims, values })
    }

    /// The shape of the viewed array.
    pub fn dims(&self) -> &'a [usize] {
        self.dims
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Total number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the view is empty (never true for a valid shape).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Size of the viewed values in bytes.
    pub fn nbytes(&self) -> usize {
        self.values.len() * T::BYTES
    }

    /// The flat row-major value slice.
    pub fn values(&self) -> &'a [T] {
        self.values
    }
}

impl<T: ScalarValue> Dataset<T> {
    /// Borrows the whole dataset as a [`DatasetView`].
    pub fn view(&self) -> DatasetView<'_, T> {
        DatasetView { dims: &self.dims, values: &self.data }
    }

    /// Creates a dataset from a shape and a flat row-major buffer.
    ///
    /// # Errors
    /// Returns [`SzError::InvalidShape`] if the shape is empty, has a zero
    /// dimension, or its element count does not match `data.len()`.
    pub fn new(dims: Vec<usize>, data: Vec<T>) -> Result<Self, SzError> {
        if dims.is_empty() {
            return Err(SzError::InvalidShape("dimension list is empty".into()));
        }
        if dims.contains(&0) {
            return Err(SzError::InvalidShape(format!("zero-sized dimension in {dims:?}")));
        }
        let expected: usize = dims.iter().product();
        if expected != data.len() {
            return Err(SzError::InvalidShape(format!(
                "shape {dims:?} holds {expected} elements but buffer has {}",
                data.len()
            )));
        }
        Ok(Dataset { dims, data })
    }

    /// Creates a dataset by evaluating `f` at every grid index.
    ///
    /// # Panics
    /// Panics if `dims` is empty or contains a zero (programming error in the
    /// caller; use [`Dataset::new`] for fallible construction from raw data).
    pub fn from_fn(dims: Vec<usize>, mut f: impl FnMut(&[usize]) -> T) -> Self {
        assert!(!dims.is_empty() && dims.iter().all(|&d| d > 0), "invalid dims {dims:?}");
        let n: usize = dims.iter().product();
        let mut idx = vec![0usize; dims.len()];
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(f(&idx));
            // Row-major odometer increment: last dimension fastest.
            for d in (0..dims.len()).rev() {
                idx[d] += 1;
                if idx[d] < dims[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        Dataset { dims, data }
    }

    /// Creates a dataset filled with a constant value.
    pub fn constant(dims: Vec<usize>, value: T) -> Result<Self, SzError> {
        let n: usize = dims.iter().product();
        Dataset::new(dims, vec![value; n])
    }

    /// The shape of the dataset (row-major; last dimension fastest).
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the dataset holds no elements (never true for a valid dataset).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the raw (uncompressed) representation in bytes.
    pub fn nbytes(&self) -> usize {
        self.len() * T::BYTES
    }

    /// Flat view of the values in row-major order.
    pub fn values(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat view of the values.
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the dataset, returning its flat value buffer.
    pub fn into_values(self) -> Vec<T> {
        self.data
    }

    /// Linear offset of a multi-dimensional index.
    ///
    /// # Panics
    /// Panics if `idx.len() != self.ndim()` or any coordinate is out of range.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.dims.len(), "index rank mismatch");
        let mut off = 0usize;
        for (d, (&i, &n)) in idx.iter().zip(&self.dims).enumerate() {
            assert!(i < n, "index {i} out of bounds for dim {d} of extent {n}");
            off = off * n + i;
        }
        off
    }

    /// Value at a multi-dimensional index.
    pub fn get(&self, idx: &[usize]) -> T {
        self.data[self.offset(idx)]
    }

    /// Sets the value at a multi-dimensional index.
    pub fn set(&mut self, idx: &[usize], v: T) {
        let off = self.offset(idx);
        self.data[off] = v;
    }

    /// Minimum and maximum value, ignoring NaNs.
    ///
    /// Returns `(0, 0)`-equivalents if every value is NaN.
    pub fn min_max(&self) -> (T, T) {
        let mut min = None::<T>;
        let mut max = None::<T>;
        for &v in &self.data {
            if v.is_nan() {
                continue;
            }
            min = Some(match min {
                Some(m) if m <= v => m,
                _ => v,
            });
            max = Some(match max {
                Some(m) if m >= v => m,
                _ => v,
            });
        }
        (min.unwrap_or_else(T::zero), max.unwrap_or_else(T::zero))
    }

    /// `max - min` over the data (the "value range" feature from the paper's
    /// Table I), as `f64`.
    pub fn value_range(&self) -> f64 {
        let (min, max) = self.min_max();
        max.to_f64() - min.to_f64()
    }

    /// Extracts the 2-D slice at `index` along `axis` from a 3-D dataset
    /// (e.g. one depth plane of an RTM wavefield for visualization).
    ///
    /// # Errors
    /// Returns [`SzError::InvalidShape`] if the dataset is not 3-D, `axis`
    /// is out of range, or `index` exceeds the axis extent.
    pub fn slice_2d(&self, axis: usize, index: usize) -> Result<Dataset<T>, SzError> {
        if self.ndim() != 3 {
            return Err(SzError::InvalidShape(format!("slice_2d requires a 3-D dataset, got {}-D", self.ndim())));
        }
        if axis >= 3 {
            return Err(SzError::InvalidShape(format!("axis {axis} out of range for 3-D data")));
        }
        if index >= self.dims[axis] {
            return Err(SzError::InvalidShape(format!(
                "index {index} out of range for axis {axis} of extent {}",
                self.dims[axis]
            )));
        }
        let out_dims: Vec<usize> = (0..3).filter(|&d| d != axis).map(|d| self.dims[d]).collect();
        let mut out = Vec::with_capacity(out_dims.iter().product());
        let mut idx = [0usize; 3];
        idx[axis] = index;
        let (a, b) = match axis {
            0 => (1, 2),
            1 => (0, 2),
            _ => (0, 1),
        };
        for i in 0..self.dims[a] {
            for j in 0..self.dims[b] {
                idx[a] = i;
                idx[b] = j;
                out.push(self.get(&idx));
            }
        }
        Dataset::new(out_dims, out)
    }

    /// Extracts a rectangular sub-volume `[start, start+extent)` per
    /// dimension (region-of-interest compression and windowed analysis).
    ///
    /// # Errors
    /// Returns [`SzError::InvalidShape`] on rank mismatches or regions
    /// exceeding the bounds.
    pub fn subvolume(&self, start: &[usize], extent: &[usize]) -> Result<Dataset<T>, SzError> {
        if start.len() != self.ndim() || extent.len() != self.ndim() {
            return Err(SzError::InvalidShape("region rank must match dataset rank".into()));
        }
        if extent.contains(&0) {
            return Err(SzError::InvalidShape("region extents must be positive".into()));
        }
        for d in 0..self.ndim() {
            if start[d] + extent[d] > self.dims[d] {
                return Err(SzError::InvalidShape(format!(
                    "region [{}..{}) exceeds dim {d} of extent {}",
                    start[d],
                    start[d] + extent[d],
                    self.dims[d]
                )));
            }
        }
        let out = Dataset::from_fn(extent.to_vec(), |idx| {
            let orig: Vec<usize> = idx.iter().zip(start).map(|(&i, &s)| i + s).collect();
            self.get(&orig)
        });
        Ok(out)
    }

    /// Serializes the values to little-endian bytes (the on-disk raw format).
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.nbytes());
        for &v in &self.data {
            v.write_le(&mut out);
        }
        out
    }

    /// Deserializes values from little-endian bytes with the given shape.
    ///
    /// # Errors
    /// Returns [`SzError::InvalidShape`] if the byte count does not match the
    /// shape, or the shape itself is invalid.
    pub fn from_le_bytes(dims: Vec<usize>, bytes: &[u8]) -> Result<Self, SzError> {
        if !bytes.len().is_multiple_of(T::BYTES) {
            return Err(SzError::InvalidShape(format!(
                "byte buffer length {} is not a multiple of scalar size {}",
                bytes.len(),
                T::BYTES
            )));
        }
        let data: Vec<T> = bytes.chunks_exact(T::BYTES).map(T::read_le).collect();
        Dataset::new(dims, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_bad_shapes() {
        assert!(Dataset::<f32>::new(vec![], vec![]).is_err());
        assert!(Dataset::<f32>::new(vec![0, 3], vec![]).is_err());
        assert!(Dataset::<f32>::new(vec![2, 2], vec![0.0; 3]).is_err());
    }

    #[test]
    fn from_fn_is_row_major() {
        let d = Dataset::from_fn(vec![2, 3], |idx| (idx[0] * 10 + idx[1]) as f32);
        assert_eq!(d.values(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(d.get(&[1, 2]), 12.0);
    }

    #[test]
    fn offset_matches_manual_computation() {
        let d = Dataset::<f64>::constant(vec![4, 5, 6], 0.0).unwrap();
        assert_eq!(d.offset(&[1, 2, 3]), 30 + 2 * 6 + 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_panics_out_of_bounds() {
        let d = Dataset::<f32>::constant(vec![2, 2], 0.0).unwrap();
        d.offset(&[2, 0]);
    }

    #[test]
    fn min_max_ignores_nan() {
        let d = Dataset::new(vec![4], vec![1.0f32, f32::NAN, -2.0, 0.5]).unwrap();
        let (min, max) = d.min_max();
        assert_eq!(min, -2.0);
        assert_eq!(max, 1.0);
        assert_eq!(d.value_range(), 3.0);
    }

    #[test]
    fn byte_round_trip() {
        let d = Dataset::from_fn(vec![3, 3], |i| (i[0] + i[1]) as f64 * 0.5);
        let bytes = d.to_le_bytes();
        let back = Dataset::<f64>::from_le_bytes(vec![3, 3], &bytes).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn from_le_bytes_rejects_misaligned() {
        assert!(Dataset::<f32>::from_le_bytes(vec![1], &[0u8; 5]).is_err());
    }

    #[test]
    fn slice_2d_extracts_planes() {
        let d = Dataset::from_fn(vec![3, 4, 5], |i| (i[0] * 100 + i[1] * 10 + i[2]) as f32);
        let plane = d.slice_2d(0, 2).unwrap();
        assert_eq!(plane.dims(), &[4, 5]);
        assert_eq!(plane.get(&[1, 3]), 213.0);
        let plane = d.slice_2d(2, 4).unwrap();
        assert_eq!(plane.dims(), &[3, 4]);
        assert_eq!(plane.get(&[2, 1]), 214.0);
        assert!(d.slice_2d(3, 0).is_err());
        assert!(d.slice_2d(1, 4).is_err());
        let flat = Dataset::<f32>::constant(vec![4, 4], 0.0).unwrap();
        assert!(flat.slice_2d(0, 0).is_err());
    }

    #[test]
    fn subvolume_extracts_regions() {
        let d = Dataset::from_fn(vec![4, 6], |i| (i[0] * 10 + i[1]) as f64);
        let sub = d.subvolume(&[1, 2], &[2, 3]).unwrap();
        assert_eq!(sub.dims(), &[2, 3]);
        assert_eq!(sub.get(&[0, 0]), 12.0);
        assert_eq!(sub.get(&[1, 2]), 24.0);
        assert!(d.subvolume(&[3, 4], &[2, 3]).is_err());
        assert!(d.subvolume(&[0], &[2]).is_err());
        assert!(d.subvolume(&[0, 0], &[0, 1]).is_err());
    }

    #[test]
    fn set_and_get() {
        let mut d = Dataset::<f32>::constant(vec![2, 2], 0.0).unwrap();
        d.set(&[1, 0], 7.0);
        assert_eq!(d.get(&[1, 0]), 7.0);
        assert_eq!(d.values()[2], 7.0);
    }
}
