//! Simplified transform-based error-bounded codec in the spirit of ZFP
//! [Lindstrom 2014].
//!
//! Data are tiled into 4^d blocks; each block is converted to block-floating
//! point, decorrelated with ZFP's integer lifting transform along every
//! dimension, and its coefficients are uniformly deadzone-quantized with a
//! per-block shift chosen *adaptively* so the reconstructed block provably
//! meets the absolute error bound (the encoder verifies reconstruction and
//! falls back to storing the block verbatim if fixed-point precision cannot
//! meet the bound). Coefficients travel as zig-zag varints followed by the
//! shared LZ dictionary stage.
//!
//! Differences from real ZFP are documented in DESIGN.md: we replace
//! negabinary embedded bit-plane coding with shift quantization + varints,
//! trading some ratio for simplicity while preserving the codec family's
//! behaviour (block transforms, block-floating-point, smoothness-driven
//! ratios).

use crate::config::{LosslessBackend, PredictorKind};
use crate::encode::{lz_compress, lz_decompress};
use crate::error::SzError;
use crate::format::{BlobHeader, CodecFamily, CompressedBlob, VERSION};
use crate::ndarray::{Dataset, DatasetView};
use crate::pipeline::{compress_chunked, CompressionOutcome, EncodedChunk};
use crate::value::ScalarValue;

const BLOCK_EDGE: usize = 4;
/// Fixed-point fraction bits for block-floating-point conversion.
const FRAC_BITS: i32 = 40;

const FLAG_TRANSFORMED: u8 = 0;
const FLAG_RAW: u8 = 1;

/// Compresses a dataset with the transform codec at an absolute error bound.
///
/// # Errors
/// Returns [`SzError::InvalidConfig`] for a non-positive bound and
/// [`SzError::InvalidShape`] for ranks above 3.
#[deprecated(note = "use `ZfpCodec` through the `Codec` trait (`crate::codec`)")]
pub fn compress<T: ScalarValue>(data: &Dataset<T>, abs_eb: f64) -> Result<CompressedBlob, SzError> {
    compress_impl(data, abs_eb, 1, None).map(|outcome| outcome.blob)
}

/// Full transform-codec compression entry: chunked container assembly shared
/// with the prediction pipeline. Called by `ZfpCodec`.
pub(crate) fn compress_impl<T: ScalarValue>(
    data: &Dataset<T>,
    abs_eb: f64,
    threads: usize,
    chunk_points: Option<usize>,
) -> Result<CompressionOutcome, SzError> {
    if !(abs_eb.is_finite() && abs_eb > 0.0) {
        return Err(SzError::InvalidConfig(format!("error bound must be positive, got {abs_eb}")));
    }
    if threads == 0 {
        return Err(SzError::InvalidConfig("thread count must be at least 1".into()));
    }
    if data.ndim() > 3 {
        return Err(SzError::InvalidShape(format!("zfp codec supports 1-3 dims, got {}", data.ndim())));
    }
    let header = BlobHeader {
        version: VERSION,
        family: CodecFamily::Transform,
        dtype: T::TYPE_NAME,
        dims: data.dims().to_vec(),
        abs_eb,
        predictor: PredictorKind::Lorenzo, // unused by this codec
        backend: LosslessBackend::Huffman, // unused by this codec
        quant_radius: 0,
    };
    compress_chunked(data, header, threads, chunk_points, |_i, chunk| {
        let payload = encode_chunk_payload(chunk, abs_eb);
        let code_bytes = payload.len();
        let crc = {
            let _p = ocelot_obs::prof::probe(ocelot_obs::prof::Kernel::FrameCrc, payload.len());
            crate::checksum::crc32(&payload)
        };
        Ok(EncodedChunk {
            payload,
            crc,
            hist: Vec::new(),
            table_mode: crate::format::TABLE_MODE_LOCAL,
            unpredictable: 0,
            side_bytes: 0,
            unpred_bytes: 0,
            code_bytes,
        })
    })
}

/// Encodes one chunk (or a whole dataset) as a transform-codec payload:
/// 4^d block stream followed by the shared LZ dictionary stage.
fn encode_chunk_payload<T: ScalarValue>(chunk: DatasetView<'_, T>, abs_eb: f64) -> Vec<u8> {
    let mut payload = Vec::new();
    {
        let _p = ocelot_obs::prof::probe(ocelot_obs::prof::Kernel::Transform, chunk.nbytes());
        for_each_block(chunk.dims(), |base| {
            let block = gather_block::<T>(chunk, &base);
            encode_block::<T>(&block, abs_eb, &mut payload);
        });
    }
    let _p = ocelot_obs::prof::probe(ocelot_obs::prof::Kernel::Lz, payload.len());
    lz_compress(&payload)
}

/// Estimates the transform codec's compression ratio by really encoding
/// every `block_stride`-th block (the transform-codec analogue of the
/// paper's 1 % sampling for prediction features — the paper leaves
/// transform-compressor quality prediction to future work; this provides
/// its cheapest building block).
///
/// # Errors
/// Returns [`SzError::InvalidConfig`]/[`SzError::InvalidShape`] under the
/// same conditions as [`compress`].
///
/// # Panics
/// Panics if `block_stride == 0`.
pub fn estimate_ratio_sampled<T: ScalarValue>(
    data: &Dataset<T>,
    abs_eb: f64,
    block_stride: usize,
) -> Result<f64, SzError> {
    assert!(block_stride > 0, "block stride must be positive");
    if !(abs_eb.is_finite() && abs_eb > 0.0) {
        return Err(SzError::InvalidConfig(format!("error bound must be positive, got {abs_eb}")));
    }
    if data.ndim() > 3 {
        return Err(SzError::InvalidShape(format!("zfp codec supports 1-3 dims, got {}", data.ndim())));
    }
    let mut payload = Vec::new();
    let mut sampled_blocks = 0usize;
    let mut k = 0usize;
    for_each_block(data.dims(), |base| {
        if k.is_multiple_of(block_stride) {
            let block = gather_block::<T>(data.view(), &base);
            encode_block::<T>(&block, abs_eb, &mut payload);
            sampled_blocks += 1;
        }
        k += 1;
    });
    if sampled_blocks == 0 {
        return Ok(1.0);
    }
    let raw_bytes = sampled_blocks * block_len(data.ndim()) * T::BYTES;
    let compressed = lz_compress(&payload).len().max(1);
    Ok(raw_bytes as f64 / compressed as f64)
}

/// Decodes one transform-codec chunk payload (or a whole legacy blob's
/// single section) back into values of shape `dims`.
///
/// # Errors
/// Returns [`SzError::CorruptStream`] for malformed payloads.
pub(crate) fn decode_chunk_payload<T: ScalarValue>(dims: &[usize], bytes: &[u8]) -> Result<Vec<T>, SzError> {
    let payload = {
        let _p = ocelot_obs::prof::probe(ocelot_obs::prof::Kernel::Lz, bytes.len());
        lz_decompress(bytes)?
    };
    if dims.len() > 3 {
        return Err(SzError::InvalidShape(format!("zfp codec supports 1-3 dims, got {}", dims.len())));
    }
    let n: usize = dims.iter().product();
    let _p = ocelot_obs::prof::probe(ocelot_obs::prof::Kernel::Transform, n * T::BYTES);
    let mut out = vec![T::zero(); n];
    let mut pos = 0usize;
    let mut failure = None;
    for_each_block(dims, |base| {
        if failure.is_some() {
            return;
        }
        match decode_block::<T>(&payload, &mut pos, dims.len()) {
            Ok(block) => scatter_block(&mut out, dims, &base, &block),
            Err(e) => failure = Some(e),
        }
    });
    if let Some(e) = failure {
        return Err(e);
    }
    if pos != payload.len() {
        return Err(SzError::CorruptStream("zfp: trailing payload bytes".into()));
    }
    Ok(out)
}

/// Number of values in a block for rank `d`.
fn block_len(ndim: usize) -> usize {
    BLOCK_EDGE.pow(ndim as u32)
}

/// Visits block origins in row-major order (3-D padded coordinates).
fn for_each_block(dims: &[usize], mut f: impl FnMut([usize; 3])) {
    let d3 = pad3(dims);
    let mut b0 = 0;
    while b0 < d3[0] {
        let mut b1 = 0;
        while b1 < d3[1] {
            let mut b2 = 0;
            while b2 < d3[2] {
                f([b0, b1, b2]);
                b2 += BLOCK_EDGE;
            }
            b1 += if dims.len() >= 2 { BLOCK_EDGE } else { d3[1] };
        }
        b0 += if dims.len() >= 3 { BLOCK_EDGE } else { d3[0] };
    }
}

fn pad3(dims: &[usize]) -> [usize; 3] {
    let mut out = [1usize; 3];
    let k = 3 - dims.len();
    for (i, &d) in dims.iter().enumerate() {
        out[k + i] = d;
    }
    out
}

/// Gathers one block, clamping out-of-range coordinates to the edge (ZFP's
/// pad-by-replication for partial blocks).
fn gather_block<T: ScalarValue>(data: DatasetView<'_, T>, base: &[usize; 3]) -> Vec<f64> {
    let ndim = data.ndim();
    let d3 = pad3(data.dims());
    let edge = |d: usize| if 3 - ndim <= d { BLOCK_EDGE } else { 1 };
    let mut out = Vec::with_capacity(block_len(ndim));
    for i in 0..edge(0) {
        for j in 0..edge(1) {
            for k in 0..edge(2) {
                let c = [(base[0] + i).min(d3[0] - 1), (base[1] + j).min(d3[1] - 1), (base[2] + k).min(d3[2] - 1)];
                let off = (c[0] * d3[1] + c[1]) * d3[2] + c[2];
                out.push(data.values()[off].to_f64());
            }
        }
    }
    out
}

/// Writes reconstructed block values back, skipping padded coordinates.
fn scatter_block<T: ScalarValue>(out: &mut [T], dims: &[usize], base: &[usize; 3], block: &[f64]) {
    let ndim = dims.len();
    let d3 = pad3(dims);
    let edge = |d: usize| if 3 - ndim <= d { BLOCK_EDGE } else { 1 };
    let mut idx = 0usize;
    for i in 0..edge(0) {
        for j in 0..edge(1) {
            for k in 0..edge(2) {
                let c = [base[0] + i, base[1] + j, base[2] + k];
                if c[0] < d3[0] && c[1] < d3[1] && c[2] < d3[2] {
                    let off = (c[0] * d3[1] + c[1]) * d3[2] + c[2];
                    out[off] = T::from_f64(block[idx]);
                }
                idx += 1;
            }
        }
    }
}

/// ZFP forward lifting transform on a 4-vector.
fn fwd_lift(v: &mut [i64], stride: usize) {
    let (mut x, mut y, mut z, mut w) = (v[0], v[stride], v[2 * stride], v[3 * stride]);
    x += w;
    x >>= 1;
    w -= x;
    z += y;
    z >>= 1;
    y -= z;
    x += z;
    x >>= 1;
    z -= x;
    w += y;
    w >>= 1;
    y -= w;
    w += y >> 1;
    y -= w >> 1;
    v[0] = x;
    v[stride] = y;
    v[2 * stride] = z;
    v[3 * stride] = w;
}

/// Inverse of [`fwd_lift`].
fn inv_lift(v: &mut [i64], stride: usize) {
    let (mut x, mut y, mut z, mut w) = (v[0], v[stride], v[2 * stride], v[3 * stride]);
    y += w >> 1;
    w -= y >> 1;
    y += w;
    w <<= 1;
    w -= y;
    z += x;
    x <<= 1;
    x -= z;
    y += z;
    z <<= 1;
    z -= y;
    w += x;
    x <<= 1;
    x -= w;
    v[0] = x;
    v[stride] = y;
    v[2 * stride] = z;
    v[3 * stride] = w;
}

/// Applies the lifting transform along every dimension of a block.
fn transform(coeffs: &mut [i64], ndim: usize, forward: bool) {
    // Strides within the block for each of the ndim dimensions.
    // Block layout is row-major with edge 4 in each active dimension.
    let strides: Vec<usize> = (0..ndim).map(|d| BLOCK_EDGE.pow((ndim - 1 - d) as u32)).collect();
    let n = coeffs.len();
    for (d, &stride) in strides.iter().enumerate() {
        let _ = d;
        // Enumerate all 4-element lines along this dimension.
        let mut visited = vec![false; n];
        for start in 0..n {
            if visited[start] {
                continue;
            }
            // A line starts where the coordinate along this dim is 0.
            let coord = (start / stride) % BLOCK_EDGE;
            if coord != 0 {
                continue;
            }
            for l in 0..BLOCK_EDGE {
                visited[start + l * stride] = true;
            }
            if forward {
                fwd_lift(&mut coeffs[start..], stride);
            } else {
                inv_lift(&mut coeffs[start..], stride);
            }
        }
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, SzError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if *pos >= bytes.len() {
            return Err(SzError::CorruptStream("zfp: truncated varint".into()));
        }
        let b = bytes[*pos];
        *pos += 1;
        if shift >= 64 {
            return Err(SzError::CorruptStream("zfp: varint overflow".into()));
        }
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Reconstructs block values from quantized coefficients (decoder parity
/// path, also used by the encoder's verification loop).
fn reconstruct(quantized: &[i64], shift: u32, exp: i32, ndim: usize) -> Vec<f64> {
    let mut coeffs: Vec<i64> = quantized.iter().map(|&c| c << shift).collect();
    transform(&mut coeffs, ndim, false);
    let scale = 2f64.powi(exp - FRAC_BITS);
    coeffs.iter().map(|&c| c as f64 * scale).collect()
}

fn encode_block<T: ScalarValue>(block: &[f64], abs_eb: f64, out: &mut Vec<u8>) {
    let ndim = match block.len() {
        4 => 1,
        16 => 2,
        _ => 3,
    };
    let finite = block.iter().all(|v| v.is_finite());
    if finite {
        let max_abs = block.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let exp = if max_abs > 0.0 { max_abs.log2().floor() as i32 + 1 } else { 0 };
        let scale = 2f64.powi(FRAC_BITS - exp);
        let mut coeffs: Vec<i64> = block.iter().map(|&v| (v * scale).round() as i64).collect();
        transform(&mut coeffs, ndim, true);

        // Find the largest shift whose reconstruction still meets the bound.
        let mut best: Option<(u32, Vec<i64>)> = None;
        let mut lo = 0u32;
        let mut hi = FRAC_BITS as u32 + 8;
        while lo <= hi {
            let mid = (lo + hi) / 2;
            let q: Vec<i64> = coeffs.iter().map(|&c| round_shift(c, mid)).collect();
            let recon = reconstruct(&q, mid, exp, ndim);
            let ok = block.iter().zip(&recon).all(|(&a, &b)| (T::from_f64(b).to_f64() - a).abs() <= abs_eb);
            if ok {
                best = Some((mid, q));
                lo = mid + 1;
            } else {
                if mid == 0 {
                    break;
                }
                hi = mid - 1;
            }
        }
        if let Some((shift, q)) = best {
            out.push(FLAG_TRANSFORMED);
            out.extend_from_slice(&(exp as i16).to_le_bytes());
            out.push(shift as u8);
            for &c in &q {
                write_varint(out, zigzag(c));
            }
            return;
        }
    }
    // Fallback: verbatim block (non-finite values or precision shortfall).
    out.push(FLAG_RAW);
    for &v in block {
        T::from_f64(v).write_le(out);
    }
}

/// Rounds `c / 2^shift` to nearest (keeps quantization error ≤ half step).
fn round_shift(c: i64, shift: u32) -> i64 {
    if shift == 0 {
        return c;
    }
    let half = 1i64 << (shift - 1);
    if c >= 0 {
        (c + half) >> shift
    } else {
        -((-c + half) >> shift)
    }
}

fn decode_block<T: ScalarValue>(payload: &[u8], pos: &mut usize, ndim: usize) -> Result<Vec<f64>, SzError> {
    if *pos >= payload.len() {
        return Err(SzError::CorruptStream("zfp: missing block flag".into()));
    }
    let flag = payload[*pos];
    *pos += 1;
    let n = block_len(ndim);
    match flag {
        FLAG_RAW => {
            let need = n * T::BYTES;
            if *pos + need > payload.len() {
                return Err(SzError::CorruptStream("zfp: truncated raw block".into()));
            }
            let vals: Vec<f64> =
                payload[*pos..*pos + need].chunks_exact(T::BYTES).map(|c| T::read_le(c).to_f64()).collect();
            *pos += need;
            Ok(vals)
        }
        FLAG_TRANSFORMED => {
            if *pos + 3 > payload.len() {
                return Err(SzError::CorruptStream("zfp: truncated block header".into()));
            }
            let exp = i16::from_le_bytes([payload[*pos], payload[*pos + 1]]) as i32;
            let shift = payload[*pos + 2] as u32;
            *pos += 3;
            if shift > FRAC_BITS as u32 + 16 {
                return Err(SzError::CorruptStream(format!("zfp: implausible shift {shift}")));
            }
            let mut q = Vec::with_capacity(n);
            for _ in 0..n {
                q.push(unzigzag(read_varint(payload, pos)?));
            }
            Ok(reconstruct(&q, shift, exp, ndim))
        }
        other => Err(SzError::CorruptStream(format!("zfp: unknown block flag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lift_round_trip_error_is_bounded() {
        // ZFP's lifting scheme drops low bits in its right shifts, so the
        // round trip is *near*-lossless: error bounded by a few integer ULPs
        // (the encoder's verification loop accounts for this).
        let mut v: Vec<i64> = vec![123_000, -456_000, 789_000, -1_000_000];
        let orig = v.clone();
        fwd_lift(&mut v, 1);
        inv_lift(&mut v, 1);
        for (a, b) in v.iter().zip(&orig) {
            assert!((a - b).abs() <= 8, "{a} vs {b}");
        }
    }

    #[test]
    fn transform_round_trip_error_is_bounded_3d() {
        let mut v: Vec<i64> = (0..64).map(|i| ((i * i * 37 % 1000) as i64 - 500) * 1000).collect();
        let orig = v.clone();
        transform(&mut v, 3, true);
        assert_ne!(v, orig);
        transform(&mut v, 3, false);
        for (a, b) in v.iter().zip(&orig) {
            assert!((a - b).abs() <= 64, "{a} vs {b}");
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [-5i64, -1, 0, 1, 7, i64::MAX / 2, i64::MIN / 2] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn varint_round_trips() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            buf.clear();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn round_shift_is_symmetric() {
        assert_eq!(round_shift(10, 2), 3); // 10/4 = 2.5 → 3
        assert_eq!(round_shift(-10, 2), -3);
        assert_eq!(round_shift(8, 2), 2);
        assert_eq!(round_shift(7, 0), 7);
    }

    fn check_round_trip(dims: Vec<usize>, eb: f64, gen: impl FnMut(&[usize]) -> f32) {
        let data = Dataset::from_fn(dims, gen);
        for threads in [1, 4] {
            let blob = compress_impl(&data, eb, threads, None).unwrap().blob;
            let out = crate::pipeline::decompress::<f32>(&blob).unwrap();
            for (a, b) in data.values().iter().zip(out.values()) {
                assert!((a - b).abs() as f64 <= eb * (1.0 + 1e-9), "a={a} b={b} eb={eb} threads={threads}");
            }
        }
    }

    #[test]
    fn full_round_trip_1d() {
        check_round_trip(vec![103], 1e-3, |i| (i[0] as f32 * 0.05).sin());
    }

    #[test]
    fn full_round_trip_2d_partial_blocks() {
        check_round_trip(vec![30, 19], 1e-4, |i| ((i[0] as f32) * 0.3).cos() * ((i[1] as f32) * 0.2).sin() * 7.0);
    }

    #[test]
    fn full_round_trip_3d() {
        check_round_trip(vec![9, 10, 11], 1e-3, |i| (i[0] + 2 * i[1] + 3 * i[2]) as f32 * 0.01);
    }

    #[test]
    fn non_finite_values_survive_via_raw_blocks() {
        let mut data = Dataset::<f32>::constant(vec![8, 8], 1.0).unwrap();
        data.set(&[0, 0], f32::INFINITY);
        data.set(&[7, 7], f32::NAN);
        let blob = compress_impl(&data, 1e-2, 1, None).unwrap().blob;
        let out = crate::pipeline::decompress::<f32>(&blob).unwrap();
        assert!(out.get(&[0, 0]).is_infinite());
        assert!(out.get(&[7, 7]).is_nan());
        assert_eq!(out.get(&[3, 3]), 1.0);
    }

    #[test]
    fn smooth_blocks_compress_better_than_noise() {
        let smooth = Dataset::from_fn(vec![32, 32], |i| (i[0] + i[1]) as f32 * 0.01);
        let mut state = 1u64;
        let noise = Dataset::from_fn(vec![32, 32], |_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 40) as f32 / 1000.0
        });
        let bs = compress_impl(&smooth, 1e-3, 1, None).unwrap().blob;
        let bn = compress_impl(&noise, 1e-3, 1, None).unwrap().blob;
        assert!(bs.len() < bn.len(), "smooth={} noise={}", bs.len(), bn.len());
    }

    #[test]
    fn sampled_ratio_is_a_faithful_feature() {
        // The LZ stage sees less context on a subsampled payload, so the
        // estimate *understates* highly compressible data; what the quality
        // model needs is (a) stride-1 fidelity and (b) monotonicity across
        // error bounds, both checked here.
        let data = Dataset::from_fn(vec![40, 40, 20], |i| ((i[0] as f32) * 0.2).sin() + ((i[1] + i[2]) as f32) * 0.01);
        let range = data.value_range();
        let real = |eb: f64| {
            let blob = compress_impl(&data, eb * range, 1, None).unwrap().blob;
            data.nbytes() as f64 / blob.len() as f64
        };
        // Stride 1 samples every block: essentially the real ratio (modulo
        // the missing blob header).
        let full = estimate_ratio_sampled(&data, 1e-3 * range, 1).unwrap();
        let r = real(1e-3);
        assert!(full / r < 1.3 && r / full < 1.3, "full {full} vs real {r}");
        // Monotone in the bound, and ordered consistently with reality.
        let est = |eb: f64| estimate_ratio_sampled(&data, eb * range, 7).unwrap();
        assert!(est(1e-2) > est(1e-4), "loose {} vs tight {}", est(1e-2), est(1e-4));
        assert_eq!(real(1e-2) > real(1e-4), est(1e-2) > est(1e-4));
    }

    #[test]
    fn rejects_bad_bounds_and_rank() {
        let data = Dataset::<f32>::constant(vec![4], 0.0).unwrap();
        assert!(compress_impl(&data, 0.0, 1, None).is_err());
        assert!(compress_impl(&data, f64::NAN, 1, None).is_err());
        assert!(compress_impl(&data, 1e-3, 0, None).is_err());
        let d4 = Dataset::<f32>::constant(vec![2, 2, 2, 2], 0.0).unwrap();
        assert!(compress_impl(&d4, 1e-3, 1, None).is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_bare_compress_still_works() {
        let data = Dataset::from_fn(vec![12, 12], |i| (i[0] + i[1]) as f32 * 0.1);
        let blob = compress(&data, 1e-3).unwrap();
        let out = crate::pipeline::decompress::<f32>(&blob).unwrap();
        for (a, b) in data.values().iter().zip(out.values()) {
            assert!((a - b).abs() <= 1e-3 + 1e-9);
        }
    }
}
