//! Error-bounded lossy compression framework for scientific floating-point data.
//!
//! This crate is a from-scratch Rust implementation of the *prediction-based*
//! error-bounded lossy compression model used by the SZ family of compressors
//! (SZ2 [Liang et al. 2018], SZ3 [Liang et al. 2022]), plus a simplified
//! transform-based codec in the spirit of ZFP [Lindstrom 2014]. It is the
//! compression substrate of the Ocelot data-transfer framework.
//!
//! # Model
//!
//! A prediction-based compressor decorrelates data with a *predictor*
//! (Lorenzo, block regression, or multilevel spline interpolation), converts
//! prediction errors to integer *quantization bins* at a granularity of twice
//! the error bound (guaranteeing `|value − reconstructed| ≤ eb` pointwise),
//! and entropy-codes the bins (canonical Huffman followed by an LZ77-style
//! dictionary stage). Values whose bins overflow the quantizer radius are
//! stored verbatim ("unpredictable" values).
//!
//! # Quickstart
//!
//! Build a configuration with [`LossyConfig::builder`], compress — the
//! [`CompressionOutcome`] carries the blob plus ratio/statistics — and
//! decompress (optionally with a worker pool over the blob's chunks):
//!
//! ```
//! use ocelot_sz::{Dataset, LossyConfig, compress, decompress};
//!
//! # fn main() -> Result<(), ocelot_sz::SzError> {
//! let data = Dataset::from_fn(vec![16, 16, 16], |idx| {
//!     (idx[0] as f32 * 0.1).sin() + (idx[1] as f32 * 0.05).cos() + idx[2] as f32 * 0.01
//! });
//! let config = LossyConfig::builder().abs(1e-3).threads(4).build()?;
//! let outcome = compress(&data, &config)?;
//! assert!(outcome.ratio > 1.0);
//! let restored = decompress::<f32>(&outcome.blob)?;
//! for (a, b) in data.values().iter().zip(restored.values()) {
//!     assert!((a - b).abs() <= 1e-3 + 1e-6);
//! }
//! # Ok(())
//! # }
//! ```
//!
//! Codec-agnostic callers (planners, CLIs) should go through the
//! [`Codec`] trait and [`CodecConfig`] enum in [`codec`], which cover both
//! this prediction pipeline and the transform codec in [`zfp`].

pub mod checksum;
pub mod codec;
pub mod config;
pub mod cost;
pub mod encode;
pub mod engine;
pub mod error;
pub mod format;
pub mod metrics;
pub mod ndarray;
pub mod pipeline;
pub mod predict;
pub mod quantizer;
pub mod sample;
pub mod stats;
pub mod value;
pub mod zfp;

pub use codec::{codec_for_blob, AnyCodec, Codec, CodecConfig, SzCodec, ZfpCodec, ZfpConfig};
pub use config::{ErrorBound, LosslessBackend, LossyConfig, LossyConfigBuilder, PredictorKind};
pub use encode::HuffmanTable;
pub use error::SzError;
pub use format::CompressedBlob;
pub use metrics::QualityReport;
pub use ndarray::{Dataset, DatasetView};
#[allow(deprecated)]
pub use pipeline::compress_with_stats;
pub use pipeline::{
    compress, compress_streamed, decode_chunk, decompress, decompress_with_threads, CompressionOutcome, StreamedChunk,
};
pub use value::ScalarValue;
