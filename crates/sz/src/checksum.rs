//! CRC-32 (IEEE 802.3) checksum for compressed-blob integrity.
//!
//! Compressed data that crosses a WAN must be verifiable on arrival (Globus
//! checksums every transferred file). The blob format appends a CRC-32 of
//! everything before it; [`crate::format::CompressedBlob::verify`] checks it
//! before decompression touches the payload.

/// CRC-32 lookup table (IEEE polynomial, reflected: 0xEDB88320).
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Computes the CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Incremental CRC-32 state, for hashing data produced in chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a new computation.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state >> 8) ^ TABLE[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// Finishes, returning the checksum.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_test_vectors() {
        // Standard CRC-32/IEEE check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"hello cruel world of bit flips";
        let mut inc = Crc32::new();
        inc.update(&data[..7]);
        inc.update(&data[7..]);
        assert_eq!(inc.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data: Vec<u8> = (0..1024u32).map(|i| (i * 7) as u8).collect();
        let base = crc32(&data);
        for byte in [0usize, 511, 1023] {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at {byte}:{bit} went undetected");
            }
        }
    }
}
