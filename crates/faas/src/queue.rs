//! Batch-scheduler node-waiting-time models (§VII-B).
//!
//! The paper observes that node waiting time on shared clusters ranges from
//! "0–30 s when there were idle nodes" to "a few minutes or even hours", with
//! no quantifiable pattern. The models here reproduce those regimes
//! deterministically from a seed.

use serde::{Deserialize, Serialize};

/// A distribution of batch-queue waiting times.
///
/// ```
/// use ocelot_faas::WaitTimeModel;
///
/// let busy = WaitTimeModel::busy_cluster();
/// let wait = busy.sample(42, 0);
/// assert!(wait >= 0.0);
/// assert_eq!(wait, busy.sample(42, 0)); // deterministic per (seed, job)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WaitTimeModel {
    /// Nodes are granted immediately (dedicated DTN deployment, or Anvil in
    /// the paper's runs).
    Immediate,
    /// Fixed waiting time in seconds (for controlled experiments).
    Fixed(f64),
    /// Uniform between `lo_s` and `hi_s` seconds (idle-node regime: 0–30 s).
    Uniform {
        /// Minimum wait, seconds.
        lo_s: f64,
        /// Maximum wait, seconds.
        hi_s: f64,
    },
    /// Busy-cluster regime: usually short, occasionally very long.
    LongTail {
        /// Median (short) wait, seconds.
        median_s: f64,
        /// Probability of hitting the long tail, in `[0, 1]`.
        p_long: f64,
        /// Long waits are uniform between `long_lo_s` and `long_hi_s`.
        long_lo_s: f64,
        /// Upper end of the long tail, seconds.
        long_hi_s: f64,
    },
}

impl WaitTimeModel {
    /// The paper's "idle nodes available" regime (0–30 s).
    pub fn idle_nodes() -> Self {
        WaitTimeModel::Uniform { lo_s: 0.0, hi_s: 30.0 }
    }

    /// The paper's busy regime (minutes to hours, unpredictable).
    pub fn busy_cluster() -> Self {
        WaitTimeModel::LongTail { median_s: 45.0, p_long: 0.25, long_lo_s: 300.0, long_hi_s: 7200.0 }
    }

    /// Samples the waiting time for `job_id` under `seed`, in seconds.
    /// Deterministic: the same (seed, job) pair always waits equally long.
    pub fn sample(&self, seed: u64, job_id: u64) -> f64 {
        let u = uniform01(seed, job_id);
        match *self {
            WaitTimeModel::Immediate => 0.0,
            WaitTimeModel::Fixed(s) => s,
            WaitTimeModel::Uniform { lo_s, hi_s } => lo_s + u * (hi_s - lo_s),
            WaitTimeModel::LongTail { median_s, p_long, long_lo_s, long_hi_s } => {
                if u < p_long {
                    let v = uniform01(seed ^ 0xABCD, job_id);
                    long_lo_s + v * (long_hi_s - long_lo_s)
                } else {
                    // Exponential-ish around the median from the remaining mass.
                    let v = (u - p_long) / (1.0 - p_long);
                    -median_s * (1.0 - v).max(1e-12).ln() / std::f64::consts::LN_2
                }
            }
        }
    }
}

/// SplitMix64-derived uniform in `[0, 1)`.
fn uniform01(seed: u64, k: u64) -> f64 {
    let mut z = seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x1234_5678_9ABC_DEF0);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_is_zero() {
        assert_eq!(WaitTimeModel::Immediate.sample(1, 2), 0.0);
    }

    #[test]
    fn fixed_is_constant() {
        let m = WaitTimeModel::Fixed(120.0);
        assert_eq!(m.sample(1, 1), 120.0);
        assert_eq!(m.sample(99, 7), 120.0);
    }

    #[test]
    fn uniform_respects_bounds_and_varies() {
        let m = WaitTimeModel::idle_nodes();
        let mut distinct = std::collections::BTreeSet::new();
        for job in 0..200 {
            let w = m.sample(42, job);
            assert!((0.0..=30.0).contains(&w), "w={w}");
            distinct.insert((w * 1e6) as u64);
        }
        assert!(distinct.len() > 100, "waits should vary across jobs");
    }

    #[test]
    fn long_tail_has_both_regimes() {
        let m = WaitTimeModel::busy_cluster();
        let waits: Vec<f64> = (0..400).map(|j| m.sample(7, j)).collect();
        let short = waits.iter().filter(|&&w| w < 300.0).count();
        let long = waits.iter().filter(|&&w| w >= 300.0).count();
        assert!(short > 200, "short={short}");
        assert!(long > 50, "long={long}");
        assert!(waits.iter().cloned().fold(0.0f64, f64::max) > 1800.0, "tail should reach tens of minutes");
    }

    #[test]
    fn sampling_is_deterministic() {
        let m = WaitTimeModel::busy_cluster();
        assert_eq!(m.sample(5, 9), m.sample(5, 9));
        assert_ne!(m.sample(5, 9), m.sample(5, 10));
    }
}
