//! Function registry and task lifecycle — the FuncX workflow of §V
//! capability 3: users register functions once, submit invocations against
//! named endpoints from their laptop, and poll task state without ever
//! holding an SSH session to the remote machine.

use crate::endpoint::{FaasEndpoint, FaasInvocation};
use ocelot_netsim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a registered function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FunctionId(u64);

/// Identifier of a submitted task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(u64);

/// Lifecycle of a submitted task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TaskState {
    /// Accepted by the service, waiting for the endpoint (dispatch +
    /// container + batch queue).
    Pending,
    /// Executing on the endpoint.
    Running,
    /// Finished at the recorded simulated time.
    Done {
        /// Completion instant.
        finished_at: SimTime,
    },
}

/// A registered function: a name plus its execution-time model (seconds as
/// a function of an abstract input size).
struct RegisteredFunction {
    name: String,
    exec_model: Box<dyn Fn(u64) -> f64 + Send + Sync>,
    needs_nodes: bool,
}

/// One submitted task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// The task id.
    pub id: TaskId,
    /// Function name.
    pub function: String,
    /// Endpoint name.
    pub endpoint: String,
    /// Submission instant.
    pub submitted_at: SimTime,
    /// Timing breakdown of the invocation.
    pub invocation: FaasInvocation,
}

impl TaskRecord {
    /// When the task starts executing (after dispatch, startup, queueing).
    pub fn start_time(&self) -> SimTime {
        self.submitted_at + (self.invocation.dispatch_s + self.invocation.startup_s + self.invocation.queue_wait_s)
    }

    /// When the task finishes.
    pub fn end_time(&self) -> SimTime {
        self.submitted_at + self.invocation.total_s()
    }

    /// Task state as observed at instant `now`.
    pub fn state_at(&self, now: SimTime) -> TaskState {
        if now >= self.end_time() {
            TaskState::Done { finished_at: self.end_time() }
        } else if now >= self.start_time() {
            TaskState::Running
        } else {
            TaskState::Pending
        }
    }
}

/// The federated fabric: registered functions plus named endpoints.
///
/// ```
/// use ocelot_faas::{FaasEndpoint, FaasFabric, WaitTimeModel};
/// use ocelot_netsim::SimTime;
///
/// let mut fabric = FaasFabric::new();
/// fabric.add_endpoint("anvil", FaasEndpoint::new("anvil", WaitTimeModel::Immediate, 1));
/// let f = fabric.register("compress_batch", true, |bytes| bytes as f64 / 1.0e9);
/// let task = fabric.submit(f, "anvil", 4_000_000_000, SimTime::ZERO).unwrap();
/// assert!(fabric.record(task).unwrap().end_time() > SimTime::ZERO);
/// ```
#[derive(Default)]
pub struct FaasFabric {
    functions: HashMap<FunctionId, RegisteredFunction>,
    endpoints: HashMap<String, FaasEndpoint>,
    tasks: HashMap<TaskId, TaskRecord>,
    next_function: u64,
    next_task: u64,
}

impl std::fmt::Debug for FaasFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaasFabric")
            .field("functions", &self.functions.len())
            .field("endpoints", &self.endpoints.keys().collect::<Vec<_>>())
            .field("tasks", &self.tasks.len())
            .finish()
    }
}

impl FaasFabric {
    /// Creates an empty fabric.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deploys an endpoint under a name. Replaces any previous endpoint of
    /// the same name.
    pub fn add_endpoint(&mut self, name: impl Into<String>, endpoint: FaasEndpoint) {
        self.endpoints.insert(name.into(), endpoint);
    }

    /// Registers a function: `exec_model` maps an abstract input size to
    /// execution seconds; `needs_nodes` selects whether invocations pass
    /// through the endpoint's batch queue.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        needs_nodes: bool,
        exec_model: impl Fn(u64) -> f64 + Send + Sync + 'static,
    ) -> FunctionId {
        let id = FunctionId(self.next_function);
        self.next_function += 1;
        self.functions
            .insert(id, RegisteredFunction { name: name.into(), exec_model: Box::new(exec_model), needs_nodes });
        id
    }

    /// Submits an invocation of `function` with `input_size` on the named
    /// endpoint at simulated instant `at`.
    ///
    /// # Errors
    /// Returns a message if the function or endpoint is unknown.
    pub fn submit(
        &mut self,
        function: FunctionId,
        endpoint: &str,
        input_size: u64,
        at: SimTime,
    ) -> Result<TaskId, String> {
        let func = self.functions.get(&function).ok_or_else(|| format!("unknown function id {function:?}"))?;
        let ep = self.endpoints.get_mut(endpoint).ok_or_else(|| format!("unknown endpoint '{endpoint}'"))?;
        let exec_s = (func.exec_model)(input_size).max(0.0);
        let invocation = ep.invoke(exec_s, func.needs_nodes);
        let id = TaskId(self.next_task);
        self.next_task += 1;
        self.tasks.insert(
            id,
            TaskRecord {
                id,
                function: func.name.clone(),
                endpoint: endpoint.to_string(),
                submitted_at: at,
                invocation,
            },
        );
        Ok(id)
    }

    /// Looks up a task record.
    pub fn record(&self, id: TaskId) -> Option<&TaskRecord> {
        self.tasks.get(&id)
    }

    /// Polls a task's state at instant `now`.
    pub fn poll(&self, id: TaskId, now: SimTime) -> Option<TaskState> {
        self.tasks.get(&id).map(|t| t.state_at(now))
    }

    /// Waits for a set of tasks: the instant at which all of them are done.
    ///
    /// Returns `None` if any id is unknown or the set is empty.
    pub fn completion_time(&self, ids: &[TaskId]) -> Option<SimTime> {
        if ids.is_empty() {
            return None;
        }
        ids.iter()
            .map(|id| self.tasks.get(id).map(TaskRecord::end_time))
            .try_fold(SimTime::ZERO, |acc, t| t.map(|t| acc.max(t)))
    }

    /// All task records, ordered by id (the "analytical data stored on the
    /// user's personal computer" of §V).
    pub fn history(&self) -> Vec<&TaskRecord> {
        let mut out: Vec<&TaskRecord> = self.tasks.values().collect();
        out.sort_by_key(|t| t.id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::WaitTimeModel;

    fn fabric() -> (FaasFabric, FunctionId) {
        let mut fabric = FaasFabric::new();
        fabric.add_endpoint("anvil", FaasEndpoint::new("anvil", WaitTimeModel::Immediate, 1));
        fabric.add_endpoint("bebop", FaasEndpoint::new("bebop", WaitTimeModel::Fixed(120.0), 2));
        let f = fabric.register("compress", true, |bytes| bytes as f64 * 1e-9);
        (fabric, f)
    }

    #[test]
    fn task_lifecycle_progresses() {
        let (mut fabric, f) = fabric();
        let t = fabric.submit(f, "anvil", 10_000_000_000, SimTime::ZERO).unwrap();
        let rec = fabric.record(t).unwrap().clone();
        assert_eq!(rec.function, "compress");
        assert!(matches!(fabric.poll(t, SimTime::ZERO).unwrap(), TaskState::Pending));
        let mid = rec.start_time() + 1.0;
        assert!(matches!(fabric.poll(t, mid).unwrap(), TaskState::Running));
        let after = rec.end_time() + 1.0;
        assert!(matches!(fabric.poll(t, after).unwrap(), TaskState::Done { .. }));
    }

    #[test]
    fn batch_queue_delays_execution() {
        let (mut fabric, f) = fabric();
        let quick = fabric.submit(f, "anvil", 1_000_000_000, SimTime::ZERO).unwrap();
        let queued = fabric.submit(f, "bebop", 1_000_000_000, SimTime::ZERO).unwrap();
        let a = fabric.record(quick).unwrap().end_time();
        let b = fabric.record(queued).unwrap().end_time();
        assert!(b - a > 100.0, "bebop task should wait ~120 s longer");
    }

    #[test]
    fn completion_time_is_the_max() {
        let (mut fabric, f) = fabric();
        let ids: Vec<TaskId> =
            (0..4).map(|i| fabric.submit(f, "anvil", (i + 1) * 1_000_000_000, SimTime::ZERO).unwrap()).collect();
        let done = fabric.completion_time(&ids).unwrap();
        let slowest = ids.iter().map(|&i| fabric.record(i).unwrap().end_time()).max().unwrap();
        assert_eq!(done, slowest);
        assert!(fabric.completion_time(&[]).is_none());
    }

    #[test]
    fn unknown_targets_are_rejected() {
        let (mut fabric, f) = fabric();
        assert!(fabric.submit(f, "nonexistent", 1, SimTime::ZERO).is_err());
        let bogus = FunctionId(999);
        assert!(fabric.submit(bogus, "anvil", 1, SimTime::ZERO).is_err());
    }

    #[test]
    fn history_is_ordered_and_container_warming_shows() {
        let (mut fabric, f) = fabric();
        for _ in 0..3 {
            fabric.submit(f, "anvil", 1_000_000, SimTime::ZERO).unwrap();
        }
        let history = fabric.history();
        assert_eq!(history.len(), 3);
        assert!(history.windows(2).all(|w| w[0].id < w[1].id));
        // First call paid the cold start; the rest hit warm containers.
        assert!(history[0].invocation.startup_s > history[1].invocation.startup_s);
        assert_eq!(history[1].invocation.startup_s, history[2].invocation.startup_s);
    }
}
