//! Compute-cluster model: nodes × cores with LPT file-to-core scheduling.

use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A homogeneous compute cluster (one batch allocation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Allocated nodes.
    pub nodes: usize,
    /// Cores per node.
    pub cores_per_node: usize,
    /// Core speed relative to the cost model's reference core.
    pub core_speed: f64,
}

impl Cluster {
    /// Creates a cluster description.
    ///
    /// # Panics
    /// Panics if any quantity is zero/non-positive.
    pub fn new(nodes: usize, cores_per_node: usize, core_speed: f64) -> Self {
        assert!(nodes > 0 && cores_per_node > 0, "cluster must have nodes and cores");
        assert!(core_speed > 0.0, "core speed must be positive");
        Cluster { nodes, cores_per_node, core_speed }
    }

    /// Total cores in the allocation.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// Makespan (seconds) of compressing files whose *reference-core*
    /// single-core costs are `work_s`, on `cores` cores of this cluster,
    /// with longest-processing-time-first assignment (each file is handled
    /// by exactly one core, as in the paper's MPI compressor).
    ///
    /// # Panics
    /// Panics if `cores == 0`.
    pub fn parallel_makespan(&self, work_s: &[f64], cores: usize) -> f64 {
        assert!(cores > 0, "at least one core");
        if work_s.is_empty() {
            return 0.0;
        }
        let cores = cores.min(self.total_cores());
        // LPT: sort descending, assign each to the least-loaded core.
        let mut sorted: Vec<f64> = work_s.to_vec();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        // Min-heap of core loads in integer nanoseconds for determinism.
        let mut heap: BinaryHeap<Reverse<u64>> = (0..cores.min(sorted.len())).map(|_| Reverse(0u64)).collect();
        for w in sorted {
            let Reverse(load) = heap.pop().expect("heap non-empty");
            let w_ns = (w.max(0.0) / self.core_speed * 1e9) as u64;
            heap.push(Reverse(load + w_ns));
        }
        let max_ns = heap.into_iter().map(|Reverse(l)| l).max().unwrap_or(0);
        max_ns as f64 * 1e-9
    }

    /// Convenience: makespan using every core in the allocation.
    pub fn full_makespan(&self, work_s: &[f64]) -> f64 {
        self.parallel_makespan(work_s, self.total_cores())
    }

    /// Per-file completion times (seconds, input order) under the same LPT
    /// schedule as [`Cluster::parallel_makespan`] — the release times a
    /// pipelined transfer consumes (files leave compression one by one).
    ///
    /// # Panics
    /// Panics if `cores == 0`.
    pub fn completion_times(&self, work_s: &[f64], cores: usize) -> Vec<f64> {
        assert!(cores > 0, "at least one core");
        let cores = cores.min(self.total_cores());
        let mut order: Vec<usize> = (0..work_s.len()).collect();
        order.sort_by(|&a, &b| work_s[b].partial_cmp(&work_s[a]).unwrap_or(std::cmp::Ordering::Equal));
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
            (0..cores.min(work_s.len().max(1))).map(|c| Reverse((0u64, c))).collect();
        let mut completion = vec![0.0f64; work_s.len()];
        for &i in &order {
            let Reverse((load, core)) = heap.pop().expect("heap non-empty");
            let w_ns = (work_s[i].max(0.0) / self.core_speed * 1e9) as u64;
            let done = load + w_ns;
            completion[i] = done as f64 * 1e-9;
            heap.push(Reverse((done, core)));
        }
        completion
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_scales_until_file_count() {
        // Fig 9 (left): time halves with cores until cores ≈ files.
        let cluster = Cluster::new(16, 128, 1.0);
        let works = vec![10.0; 512];
        let t128 = cluster.parallel_makespan(&works, 128);
        let t256 = cluster.parallel_makespan(&works, 256);
        let t512 = cluster.parallel_makespan(&works, 512);
        let t2048 = cluster.parallel_makespan(&works, 2048);
        assert_eq!(t128, 40.0);
        assert_eq!(t256, 20.0);
        assert_eq!(t512, 10.0);
        assert_eq!(t2048, 10.0, "saturated at #files");
    }

    #[test]
    fn faster_cores_reduce_makespan() {
        let slow = Cluster::new(1, 64, 1.0);
        let fast = Cluster::new(1, 64, 3.0);
        let works = vec![3.0; 64];
        assert!((fast.full_makespan(&works) - slow.full_makespan(&works) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn lpt_balances_heterogeneous_work() {
        let cluster = Cluster::new(1, 2, 1.0);
        // Work {5,4,3,3,3}: LPT → cores {5,3} and {4,3,3} → makespan 10.
        let works = vec![5.0, 4.0, 3.0, 3.0, 3.0];
        let t = cluster.parallel_makespan(&works, 2);
        assert!((t - 10.0).abs() < 1e-6, "t={t}");
    }

    #[test]
    fn empty_work_is_free() {
        assert_eq!(Cluster::new(1, 1, 1.0).full_makespan(&[]), 0.0);
    }

    #[test]
    fn cores_capped_by_allocation() {
        let cluster = Cluster::new(1, 4, 1.0);
        let works = vec![1.0; 64];
        // Requesting 1000 cores cannot beat the 4 cores that exist.
        assert_eq!(cluster.parallel_makespan(&works, 1000), cluster.parallel_makespan(&works, 4));
    }

    #[test]
    fn completion_times_are_consistent_with_the_makespan() {
        let cluster = Cluster::new(1, 3, 2.0);
        let works = vec![6.0, 2.0, 4.0, 4.0, 2.0];
        let completions = cluster.completion_times(&works, 3);
        let makespan = cluster.parallel_makespan(&works, 3);
        let latest = completions.iter().cloned().fold(0.0f64, f64::max);
        assert!((latest - makespan).abs() < 1e-9, "latest {latest} vs makespan {makespan}");
        // Every file finishes no earlier than its own work takes.
        for (c, w) in completions.iter().zip(&works) {
            assert!(*c >= w / 2.0 - 1e-12, "completion {c} for work {w}");
        }
    }

    #[test]
    fn completion_times_stagger_across_rounds() {
        let cluster = Cluster::new(1, 2, 1.0);
        let works = vec![1.0; 6];
        let mut completions = cluster.completion_times(&works, 2);
        completions.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        assert_eq!(completions, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    fn single_file_cannot_be_parallelized() {
        let cluster = Cluster::new(16, 128, 1.0);
        assert_eq!(cluster.parallel_makespan(&[42.0], 2048), 42.0);
    }
}
