//! FuncX-style function-serving endpoint: dispatch overhead, container
//! warming, request batching, and batch-queue provisioning.

use crate::queue::WaitTimeModel;
use serde::{Deserialize, Serialize};

/// A federated FaaS endpoint deployed at one site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaasEndpoint {
    /// Site label (diagnostics only).
    pub site: String,
    /// Web-service dispatch latency per request batch, seconds.
    pub dispatch_s: f64,
    /// Container cold-start cost, seconds.
    pub cold_start_s: f64,
    /// Warm-container invocation cost, seconds.
    pub warm_start_s: f64,
    /// Batch-queue waiting model for invocations that need compute nodes.
    pub wait_model: WaitTimeModel,
    /// RNG seed for waiting-time draws.
    pub seed: u64,
    /// Number of invocations served so far (container warming state).
    invocations: u64,
}

/// Timing breakdown of one (batched) function invocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaasInvocation {
    /// Service dispatch latency.
    pub dispatch_s: f64,
    /// Container start cost (cold on first use, warm afterwards).
    pub startup_s: f64,
    /// Batch-queue waiting time before nodes were granted.
    pub queue_wait_s: f64,
    /// Function execution time (supplied by the caller).
    pub exec_s: f64,
}

impl FaasInvocation {
    /// End-to-end latency of the invocation.
    pub fn total_s(&self) -> f64 {
        self.dispatch_s + self.startup_s + self.queue_wait_s + self.exec_s
    }
}

/// Execution timing of one compression chunk inside a chunked invocation,
/// relative to the start of function execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChunkTiming {
    /// Chunk index within the file (container chunk-table order).
    pub chunk: usize,
    /// Codec thread (lane) the chunk ran on.
    pub lane: usize,
    /// Seconds after execution start at which the chunk began.
    pub start_s: f64,
    /// Chunk execution time, seconds.
    pub exec_s: f64,
}

impl ChunkTiming {
    /// Seconds after execution start at which the chunk finished.
    pub fn end_s(&self) -> f64 {
        self.start_s + self.exec_s
    }
}

impl FaasEndpoint {
    /// Creates an endpoint with FuncX-calibrated overheads (dispatch ≈ 90 ms,
    /// cold container ≈ 5 s, warm ≈ 30 ms).
    pub fn new(site: impl Into<String>, wait_model: WaitTimeModel, seed: u64) -> Self {
        FaasEndpoint {
            site: site.into(),
            dispatch_s: 0.09,
            cold_start_s: 5.0,
            warm_start_s: 0.03,
            wait_model,
            seed,
            invocations: 0,
        }
    }

    /// Invokes a function whose execution takes `exec_s` seconds and needs
    /// compute nodes (`needs_nodes = false` skips the batch queue — e.g.
    /// feature extraction on a login node or DTN).
    ///
    /// The first invocation pays the cold-start cost; later ones hit warm
    /// containers (FuncX container warming).
    pub fn invoke(&mut self, exec_s: f64, needs_nodes: bool) -> FaasInvocation {
        let cold = self.invocations == 0;
        let startup = if cold { self.cold_start_s } else { self.warm_start_s };
        let wait = if needs_nodes { self.wait_model.sample(self.seed, self.invocations) } else { 0.0 };
        self.invocations += 1;
        let obs = ocelot_obs::global();
        obs.inc("ocelot_faas_invocations_total", "FaaS invocations served");
        if cold {
            obs.inc("ocelot_faas_cold_starts_total", "Invocations that paid a container cold start");
        }
        obs.observe("ocelot_faas_queue_wait_seconds", "Simulated batch-queue wait before nodes were granted", wait);
        obs.observe("ocelot_faas_exec_seconds", "Simulated function execution time", exec_s);
        FaasInvocation { dispatch_s: self.dispatch_s, startup_s: startup, queue_wait_s: wait, exec_s }
    }

    /// Invokes a batch of `n` functions submitted together: dispatch and
    /// startup are amortized across the batch (FuncX executor batching),
    /// the queue is paid once, and execution is the caller-computed makespan.
    pub fn invoke_batch(&mut self, n: usize, makespan_s: f64, needs_nodes: bool) -> FaasInvocation {
        let mut inv = self.invoke(makespan_s, needs_nodes);
        // Marginal per-request cost within a batch is tiny (~2 ms).
        inv.dispatch_s += 0.002 * n.saturating_sub(1) as f64;
        inv
    }

    /// Invokes a chunk-parallel compression function: `chunk_exec_s[i]` is
    /// the single-thread execution time of chunk `i`, run on `codec_threads`
    /// worker lanes. Chunks are claimed in container order by the first free
    /// lane — the same work-stealing order the real engine uses — so the
    /// reported makespan and per-chunk start offsets match what a wall-clock
    /// profile of the chunked codec would show.
    ///
    /// Returns the batched invocation (exec = chunk makespan) plus the
    /// per-chunk timing table, and records each chunk's execution time in the
    /// `ocelot_faas_chunk_exec_seconds` histogram.
    ///
    /// # Panics
    /// Panics if `codec_threads == 0`.
    pub fn invoke_chunked(
        &mut self,
        chunk_exec_s: &[f64],
        codec_threads: usize,
        needs_nodes: bool,
    ) -> (FaasInvocation, Vec<ChunkTiming>) {
        assert!(codec_threads > 0, "codec_threads must be >= 1");
        let obs = ocelot_obs::global();
        let mut lanes = vec![0.0_f64; codec_threads.min(chunk_exec_s.len().max(1))];
        let mut timings = Vec::with_capacity(chunk_exec_s.len());
        for (chunk, &exec) in chunk_exec_s.iter().enumerate() {
            let exec = exec.max(0.0);
            let (lane, start) =
                lanes.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).map(|(i, &t)| (i, t)).expect("lanes");
            timings.push(ChunkTiming { chunk, lane, start_s: start, exec_s: exec });
            lanes[lane] = start + exec;
            obs.observe("ocelot_faas_chunk_exec_seconds", "Per-chunk codec execution time", exec);
            if ocelot_obs::ledger::is_active() {
                use ocelot_obs::ledger::{emit, Draft, EventKind};
                let d = |t: f64| Draft { chunk: Some(chunk as u32), t_sim: Some(t), ..Draft::default() };
                let p = emit(EventKind::CompressBegin, d(start));
                emit(EventKind::Encoded, Draft { parent: p, ..d(start + exec) });
            }
        }
        let makespan = lanes.iter().fold(0.0_f64, |a, &b| a.max(b));
        (self.invoke_batch(chunk_exec_s.len().max(1), makespan, needs_nodes), timings)
    }

    /// Streamed variant of [`FaasEndpoint::invoke_chunked`]: chunk `i` only
    /// becomes available at `release_s[i]` seconds after execution start —
    /// e.g. when it lands from the WAN — so a lane that frees up early idles
    /// until the next chunk arrives (`start = max(lane_free, release)`).
    /// This is the decompress-on-arrival half of the streaming pipeline: the
    /// reported makespan is the arrival-bounded decompression finish, and
    /// `makespan − last_release` is the decompression tail that streaming
    /// cannot hide behind the transfer.
    ///
    /// With all releases zero this reduces exactly to `invoke_chunked`.
    ///
    /// # Panics
    /// Panics if `codec_threads == 0`, `release_s.len() != chunk_exec_s.len()`,
    /// or any release is negative/non-finite.
    pub fn invoke_chunked_released(
        &mut self,
        chunk_exec_s: &[f64],
        release_s: &[f64],
        codec_threads: usize,
        needs_nodes: bool,
    ) -> (FaasInvocation, Vec<ChunkTiming>) {
        assert!(codec_threads > 0, "codec_threads must be >= 1");
        assert_eq!(release_s.len(), chunk_exec_s.len(), "one release time per chunk");
        assert!(release_s.iter().all(|r| r.is_finite() && *r >= 0.0), "release times must be non-negative");
        let obs = ocelot_obs::global();
        let mut lanes = vec![0.0_f64; codec_threads.min(chunk_exec_s.len().max(1))];
        let mut timings = Vec::with_capacity(chunk_exec_s.len());
        for (chunk, (&exec, &release)) in chunk_exec_s.iter().zip(release_s).enumerate() {
            let exec = exec.max(0.0);
            let (lane, free) =
                lanes.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).map(|(i, &t)| (i, t)).expect("lanes");
            let start = free.max(release);
            timings.push(ChunkTiming { chunk, lane, start_s: start, exec_s: exec });
            lanes[lane] = start + exec;
            obs.observe("ocelot_faas_chunk_exec_seconds", "Per-chunk codec execution time", exec);
            if ocelot_obs::ledger::is_active() {
                use ocelot_obs::ledger::{emit, Draft, EventKind};
                let d = |t: f64| Draft { chunk: Some(chunk as u32), t_sim: Some(t), ..Draft::default() };
                // Decode-on-arrival: a busy lane parks the landed chunk in
                // the reorder buffer until a decoder frees up.
                let p = if start > release {
                    let p = emit(
                        EventKind::ReorderEnter,
                        Draft { cause: Some("decode lanes busy".to_string()), ..d(release) },
                    );
                    emit(EventKind::ReorderExit, Draft { parent: p, ..d(start) })
                } else {
                    None
                };
                let p = emit(EventKind::DecodeBegin, Draft { parent: p, ..d(start) });
                emit(EventKind::DecodeEnd, Draft { parent: p, ..d(start + exec) });
            }
        }
        let makespan = lanes.iter().fold(0.0_f64, |a, &b| a.max(b));
        (self.invoke_batch(chunk_exec_s.len().max(1), makespan, needs_nodes), timings)
    }

    /// Number of invocations served.
    pub fn invocation_count(&self) -> u64 {
        self.invocations
    }

    /// Whether the next invocation will hit a warm container.
    pub fn is_warm(&self) -> bool {
        self.invocations > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_call_is_cold_then_warm() {
        let mut ep = FaasEndpoint::new("anvil", WaitTimeModel::Immediate, 1);
        assert!(!ep.is_warm());
        let a = ep.invoke(1.0, false);
        let b = ep.invoke(1.0, false);
        assert!(a.startup_s > b.startup_s);
        assert!(ep.is_warm());
        assert_eq!(ep.invocation_count(), 2);
    }

    #[test]
    fn queue_wait_only_when_nodes_needed() {
        let mut ep = FaasEndpoint::new("bebop", WaitTimeModel::Fixed(300.0), 1);
        let login = ep.invoke(1.0, false);
        let batch = ep.invoke(1.0, true);
        assert_eq!(login.queue_wait_s, 0.0);
        assert_eq!(batch.queue_wait_s, 300.0);
        assert!(batch.total_s() > 300.0);
    }

    #[test]
    fn batching_amortizes_overhead() {
        let mut a = FaasEndpoint::new("x", WaitTimeModel::Immediate, 1);
        let batched = a.invoke_batch(100, 10.0, false).total_s();
        let mut b = FaasEndpoint::new("x", WaitTimeModel::Immediate, 1);
        let unbatched: f64 = (0..100).map(|_| b.invoke(0.1, false).total_s()).sum();
        assert!(batched < unbatched, "batched={batched} unbatched={unbatched}");
    }

    #[test]
    fn chunked_invocation_reports_per_chunk_timings() {
        let mut ep = FaasEndpoint::new("anvil", WaitTimeModel::Immediate, 1);
        ep.invoke(0.0, false); // warm the container
        let work = [4.0, 1.0, 1.0, 1.0, 1.0];
        let (serial, t1) = ep.invoke_chunked(&work, 1, false);
        let (parallel, t4) = ep.invoke_chunked(&work, 4, false);
        assert_eq!(t1.len(), work.len());
        assert_eq!(t4.len(), work.len());
        // Serial: chunks run back to back on lane 0.
        assert!((serial.exec_s - 8.0).abs() < 1e-12);
        assert!(t1.iter().all(|t| t.lane == 0));
        assert!((t1[4].start_s - 7.0).abs() < 1e-12);
        // 4 lanes: the long chunk bounds the makespan; others pack around it.
        assert!((parallel.exec_s - 4.0).abs() < 1e-12, "exec {}", parallel.exec_s);
        assert_eq!(t4[0].lane, 0);
        assert!(t4[4].start_s < 4.0);
        assert!((t4.iter().map(ChunkTiming::end_s).fold(0.0_f64, f64::max) - parallel.exec_s).abs() < 1e-12);
    }

    #[test]
    fn chunked_invocation_handles_edge_shapes() {
        let mut ep = FaasEndpoint::new("anvil", WaitTimeModel::Immediate, 1);
        let (inv, timings) = ep.invoke_chunked(&[], 4, false);
        assert!(timings.is_empty());
        assert_eq!(inv.exec_s, 0.0);
        // More lanes than chunks: each chunk starts at 0 on its own lane.
        let (inv, timings) = ep.invoke_chunked(&[2.0, 3.0], 8, false);
        assert!((inv.exec_s - 3.0).abs() < 1e-12);
        assert!(timings.iter().all(|t| t.start_s == 0.0));
    }

    #[test]
    fn released_chunks_wait_for_arrival() {
        let mut ep = FaasEndpoint::new("cori", WaitTimeModel::Immediate, 1);
        ep.invoke(0.0, false); // warm the container
        let work = [1.0, 1.0, 1.0, 1.0];
        // All-zero releases reduce exactly to the plain chunked invocation.
        let (plain, pt) = ep.invoke_chunked(&work, 2, false);
        let (zero, zt) = ep.invoke_chunked_released(&work, &[0.0; 4], 2, false);
        assert_eq!(pt, zt);
        assert!((plain.exec_s - zero.exec_s).abs() < 1e-12);
        // Staggered arrivals: lanes idle until each chunk lands, so the
        // makespan is bounded below by last_release + its exec time.
        let releases = [0.0, 2.0, 4.0, 6.0];
        let (inv, t) = ep.invoke_chunked_released(&work, &releases, 2, false);
        for (timing, &r) in t.iter().zip(&releases) {
            assert!(timing.start_s >= r, "chunk {} started at {} before arrival {r}", timing.chunk, timing.start_s);
        }
        assert!((inv.exec_s - 7.0).abs() < 1e-12, "exec {}", inv.exec_s);
    }

    #[test]
    #[should_panic(expected = "one release time per chunk")]
    fn released_length_mismatch_panics() {
        let mut ep = FaasEndpoint::new("cori", WaitTimeModel::Immediate, 1);
        ep.invoke_chunked_released(&[1.0, 1.0], &[0.0], 2, false);
    }

    #[test]
    fn total_is_sum_of_parts() {
        let inv = FaasInvocation { dispatch_s: 0.1, startup_s: 0.2, queue_wait_s: 0.3, exec_s: 0.4 };
        assert!((inv.total_s() - 1.0).abs() < 1e-12);
    }
}
