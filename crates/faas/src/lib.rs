//! Federated FaaS (FuncX-style) and batch-scheduler simulation.
//!
//! Ocelot orchestrates remote (de)compression through a federated
//! function-as-a-service fabric: functions are dispatched to endpoints
//! deployed at each site, which provision compute nodes through the site's
//! batch scheduler. This crate models the pieces of that stack the paper's
//! optimizations depend on:
//!
//! * **node waiting time** (§VII-B) — a compression job may sit in the batch
//!   queue from seconds to hours; the sentinel optimization transfers
//!   uncompressed data while waiting;
//! * **container warming and batching** — FuncX amortizes container
//!   instantiation and request overhead across calls;
//! * **parallel task placement** — files are assigned to cores with
//!   longest-processing-time-first scheduling; compression stops scaling
//!   once cores ≥ files (Fig 9 left).
//!
//! ```
//! use ocelot_faas::{Cluster, WaitTimeModel};
//!
//! let cluster = Cluster::new(16, 128, 3.0);
//! let works = vec![2.0_f64; 768]; // single-core seconds per file
//! let makespan = cluster.parallel_makespan(&works, 2048);
//! assert!(makespan < 2.0 * 768.0);
//! ```

pub mod cluster;
pub mod endpoint;
pub mod queue;
pub mod task;

pub use cluster::Cluster;
pub use endpoint::{ChunkTiming, FaasEndpoint, FaasInvocation};
pub use queue::WaitTimeModel;
pub use task::{FaasFabric, FunctionId, TaskId, TaskRecord, TaskState};
