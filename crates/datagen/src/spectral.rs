//! Spectral field synthesis primitives.
//!
//! Scientific fields are modelled as superpositions of random-phase plane
//! waves with a power-law amplitude spectrum `A(k) ∝ k^(−β)`: large `β`
//! produces smooth, highly compressible fields (climate pressure), small `β`
//! produces rough, turbulence-like fields (Miranda velocity), and
//! post-transforms add the value distributions the paper's Table I shows
//! (sparsity, log-normal dynamic range, hard clamps).

use ocelot_sz::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for a random-phase spectral field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralConfig {
    /// Number of plane-wave modes superposed.
    pub modes: usize,
    /// Spectral slope β: amplitude ∝ wavenumber^(−β). Typical range 0.5–3.
    pub beta: f64,
    /// Maximum wavenumber in cycles across the domain.
    pub max_wavenumber: f64,
    /// RNG seed (fields are fully determined by config + seed).
    pub seed: u64,
}

impl Default for SpectralConfig {
    fn default() -> Self {
        SpectralConfig { modes: 48, beta: 2.0, max_wavenumber: 24.0, seed: 0 }
    }
}

impl SpectralConfig {
    /// Generates a field on `dims`, normalized to approximately `[0, 1]`.
    ///
    /// # Panics
    /// Panics if `dims` is empty, contains zeros, or `modes == 0`.
    pub fn generate(&self, dims: &[usize]) -> Dataset<f32> {
        self.generate_window(dims, dims)
    }

    /// Generates a *window* of a conceptual full-resolution field: mode
    /// frequencies are normalized against `full_dims` (where
    /// `max_wavenumber` means cycles across the full domain), and the field
    /// is evaluated on the first `dims` cells. Per-cell statistics —
    /// smoothness, Lorenzo error, compressibility — therefore do not depend
    /// on `dims`, which is what makes scaled-down profiling extrapolate to
    /// full-size files.
    ///
    /// # Panics
    /// Panics if shapes are empty/zero, ranks differ, or `modes == 0`.
    pub fn generate_window(&self, dims: &[usize], full_dims: &[usize]) -> Dataset<f32> {
        assert_eq!(dims.len(), full_dims.len(), "window rank must match full rank");
        assert!(self.modes > 0, "at least one mode required");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let ndim = dims.len();
        // Draw modes: wavevector (cycles across each axis), phase, amplitude.
        let mut waves = Vec::with_capacity(self.modes);
        for _ in 0..self.modes {
            // Log-uniform wavenumber magnitude in [1, max_wavenumber].
            let mag = (rng.gen::<f64>() * self.max_wavenumber.max(1.0).ln()).exp();
            let mut dir: Vec<f64> = (0..ndim).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
            let norm = dir.iter().map(|d| d * d).sum::<f64>().sqrt().max(1e-9);
            for d in &mut dir {
                *d = *d / norm * mag;
            }
            let phase = rng.gen::<f64>() * std::f64::consts::TAU;
            let amp = mag.powf(-self.beta);
            waves.push((dir, phase, amp));
        }
        let inv_dims: Vec<f64> = full_dims.iter().map(|&d| 1.0 / d.max(1) as f64).collect();
        let n: usize = dims.iter().product();
        assert!(n > 0, "dims must be non-empty and positive: {dims:?}");
        let mut raw = Vec::with_capacity(n);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut idx = vec![0usize; ndim];
        for _ in 0..n {
            let mut v = 0.0f64;
            for (dir, phase, amp) in &waves {
                let mut arg = *phase;
                for d in 0..ndim {
                    arg += std::f64::consts::TAU * dir[d] * idx[d] as f64 * inv_dims[d];
                }
                v += amp * arg.cos();
            }
            min = min.min(v);
            max = max.max(v);
            raw.push(v);
            for d in (0..ndim).rev() {
                idx[d] += 1;
                if idx[d] < dims[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        let range = (max - min).max(1e-12);
        let vals: Vec<f32> = raw.iter().map(|&v| ((v - min) / range) as f32).collect();
        Dataset::new(dims.to_vec(), vals).expect("shape validated above")
    }
}

/// Rescales a `[0,1]`-ish field linearly to `[lo, hi]`.
pub fn rescale(data: &mut Dataset<f32>, lo: f32, hi: f32) {
    for v in data.values_mut() {
        *v = lo + *v * (hi - lo);
    }
}

/// Zeroes values below `threshold` (sparse fields such as snow/ice cover:
/// large exactly-zero regions with smooth structure elsewhere).
pub fn sparsify(data: &mut Dataset<f32>, threshold: f32) {
    for v in data.values_mut() {
        if *v < threshold {
            *v = 0.0;
        } else {
            *v -= threshold;
        }
    }
}

/// Exponentiates a field to produce a heavy-tailed, log-normal-like value
/// distribution (cosmology densities): `v ← exp(sigma·(v − 0.5))`.
pub fn exponentiate(data: &mut Dataset<f32>, sigma: f32) {
    for v in data.values_mut() {
        *v = (sigma * (*v - 0.5)).exp();
    }
}

/// Adds white observation noise of amplitude `amp` (deterministic from
/// `seed`); raises byte-level entropy without changing large-scale structure.
pub fn add_noise(data: &mut Dataset<f32>, amp: f32, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    for v in data.values_mut() {
        *v += amp * (rng.gen::<f32>() - 0.5);
    }
}

/// Multiplies by an expanding spherical wavefront centred mid-domain —
/// the structure of an RTM snapshot at time-step `t` of `t_max`: energy
/// concentrated on a shell whose radius grows with `t`.
pub fn wavefront(data: &mut Dataset<f32>, dims: &[usize], t: f64, wavelength: f64) {
    let centre: Vec<f64> = dims.iter().map(|&d| d as f64 / 2.0).collect();
    let max_r = centre.iter().map(|c| c * c).sum::<f64>().sqrt();
    let shell_r = t.clamp(0.0, 1.0) * max_r;
    let mut idx = vec![0usize; dims.len()];
    for off in 0..data.len() {
        // Reconstruct the multi-index (row-major).
        let mut rem = off;
        for d in (0..dims.len()).rev() {
            idx[d] = rem % dims[d];
            rem /= dims[d];
        }
        let r = idx
            .iter()
            .zip(&centre)
            .map(|(&i, &c)| {
                let d = i as f64 - c;
                d * d
            })
            .sum::<f64>()
            .sqrt();
        let envelope = (-(r - shell_r).powi(2) / (2.0 * (max_r * 0.08).powi(2))).exp();
        let carrier = (std::f64::consts::TAU * r / wavelength).sin();
        data.values_mut()[off] *= (envelope * (0.2 + 0.8 * carrier.abs())) as f32;
    }
}

/// Swirls a field into a vortex around the domain centre of the *last two*
/// dimensions (hurricane structure): value is attenuated with radius and
/// modulated azimuthally with `arms` spiral arms.
pub fn vortex(data: &mut Dataset<f32>, dims: &[usize], arms: u32, tightness: f64) {
    let n = dims.len();
    assert!(n >= 2, "vortex needs at least 2 dims");
    let (cy, cx) = (dims[n - 2] as f64 / 2.0, dims[n - 1] as f64 / 2.0);
    let max_r = (cy * cy + cx * cx).sqrt();
    let mut idx = vec![0usize; n];
    for off in 0..data.len() {
        let mut rem = off;
        for d in (0..n).rev() {
            idx[d] = rem % dims[d];
            rem /= dims[d];
        }
        let dy = idx[n - 2] as f64 - cy;
        let dx = idx[n - 1] as f64 - cx;
        let r = (dy * dy + dx * dx).sqrt() / max_r;
        let theta = dy.atan2(dx);
        let spiral = (arms as f64 * theta + tightness * r * 12.0).cos() * 0.5 + 0.5;
        let falloff = (-r * 2.5).exp();
        data.values_mut()[off] *= (0.15 + 0.85 * spiral * falloff) as f32;
    }
}

/// Applies `log10(1 + v)` — the paper's ISABEL fields marked `_log10`.
pub fn log10_transform(data: &mut Dataset<f32>) {
    for v in data.values_mut() {
        *v = (1.0 + v.max(0.0)).log10();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_sz::stats::value_stats;

    #[test]
    fn spectral_field_is_normalized() {
        let cfg = SpectralConfig { seed: 42, ..Default::default() };
        let d = cfg.generate(&[32, 32]);
        let s = value_stats(&d);
        assert!(s.min >= -1e-6 && s.max <= 1.0 + 1e-6);
        assert!((s.range - 1.0).abs() < 1e-3, "normalized range, got {}", s.range);
    }

    #[test]
    fn higher_beta_is_smoother() {
        let smooth = SpectralConfig { beta: 3.0, seed: 1, ..Default::default() }.generate(&[64, 64]);
        let rough = SpectralConfig { beta: 0.5, seed: 1, ..Default::default() }.generate(&[64, 64]);
        let e_smooth = ocelot_sz::predict::lorenzo::mean_raw_error(&smooth);
        let e_rough = ocelot_sz::predict::lorenzo::mean_raw_error(&rough);
        assert!(e_smooth < e_rough, "smooth {e_smooth} vs rough {e_rough}");
    }

    #[test]
    fn rescale_hits_target_range() {
        let mut d = SpectralConfig { seed: 3, ..Default::default() }.generate(&[40, 40]);
        rescale(&mut d, 92.84, 418.24);
        let s = value_stats(&d);
        assert!((s.min - 92.84).abs() < 0.5, "min {}", s.min);
        assert!((s.max - 418.24).abs() < 0.5, "max {}", s.max);
    }

    #[test]
    fn sparsify_creates_zero_mass() {
        let mut d = SpectralConfig { seed: 4, ..Default::default() }.generate(&[50, 50]);
        sparsify(&mut d, 0.6);
        let zeros = d.values().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros as f64 / d.len() as f64 > 0.3, "zeros={zeros}");
        assert!(d.values().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn exponentiate_creates_heavy_tail() {
        let mut d = SpectralConfig { seed: 5, ..Default::default() }.generate(&[64, 64]);
        exponentiate(&mut d, 10.0);
        let s = value_stats(&d);
        // Log-normal-ish: max far above mean.
        assert!(s.max > 10.0 * s.mean, "max={} mean={}", s.max, s.mean);
    }

    #[test]
    fn wavefront_concentrates_energy_on_shell() {
        let dims = vec![32, 32, 32];
        let mut d = Dataset::<f32>::constant(dims.clone(), 1.0).unwrap();
        wavefront(&mut d, &dims, 0.5, 6.0);
        // Centre and far corner should be attenuated relative to the shell.
        let centre = d.get(&[16, 16, 16]);
        let shell_r = 0.5 * (3.0f32 * 16.0 * 16.0).sqrt();
        let on_shell = d.get(&[16, 16, (16.0 + shell_r) as usize]);
        assert!(on_shell > centre, "shell {on_shell} vs centre {centre}");
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let mut a = Dataset::<f32>::constant(vec![64], 0.0).unwrap();
        let mut b = Dataset::<f32>::constant(vec![64], 0.0).unwrap();
        add_noise(&mut a, 0.1, 9);
        add_noise(&mut b, 0.1, 9);
        assert_eq!(a, b);
        let mut c = Dataset::<f32>::constant(vec![64], 0.0).unwrap();
        add_noise(&mut c, 0.1, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn log10_is_monotone_and_nonnegative() {
        let mut d = Dataset::new(vec![3], vec![0.0f32, 9.0, 99.0]).unwrap();
        log10_transform(&mut d);
        assert_eq!(d.values()[0], 0.0);
        assert!((d.values()[1] - 1.0).abs() < 1e-6);
        assert!((d.values()[2] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn vortex_attenuates_with_radius() {
        let dims = vec![64, 64];
        let mut d = Dataset::<f32>::constant(dims.clone(), 1.0).unwrap();
        vortex(&mut d, &dims, 3, 0.5);
        let near: f32 = d.get(&[32, 34]);
        let far: f32 = d.get(&[1, 1]);
        assert!(near > far, "near {near} far {far}");
    }
}
