//! Per-application dataset presets matching the paper's Table IV.
//!
//! Each application contributes named fields with characteristic smoothness,
//! value ranges (Table I), sparsity, and dynamic range. Dimensions default to
//! the paper's (e.g. CESM `1800×3600`, RTM `449×449×235`) and can be divided
//! by a scale factor for laptop-sized runs.

use crate::spectral::{add_noise, exponentiate, log10_transform, rescale, sparsify, vortex, wavefront, SpectralConfig};
use ocelot_sz::Dataset;

/// The scientific applications evaluated in the paper (Table IV, plus HACC
/// from Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Application {
    /// Community Earth System Model — 2-D climate fields.
    Cesm,
    /// Miranda — 3-D hydrodynamics / large turbulence simulation.
    Miranda,
    /// Reverse Time Migration — 3-D seismic wavefield snapshots.
    Rtm,
    /// Nyx — 3-D cosmology (adaptive mesh) fields.
    Nyx,
    /// Hurricane ISABEL — 3-D weather simulation.
    Isabel,
    /// QMCPACK — electronic-structure orbitals (einspline).
    Qmcpack,
    /// HACC — N-body cosmology particle arrays (1-D).
    Hacc,
}

impl Application {
    /// All applications, in the paper's presentation order.
    pub const ALL: [Application; 7] = [
        Application::Cesm,
        Application::Miranda,
        Application::Rtm,
        Application::Nyx,
        Application::Isabel,
        Application::Qmcpack,
        Application::Hacc,
    ];

    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            Application::Cesm => "cesm",
            Application::Miranda => "miranda",
            Application::Rtm => "rtm",
            Application::Nyx => "nyx",
            Application::Isabel => "isabel",
            Application::Qmcpack => "qmcpack",
            Application::Hacc => "hacc",
        }
    }

    /// The paper's full field dimensions (Table IV).
    pub fn default_dims(&self) -> Vec<usize> {
        match self {
            Application::Cesm => vec![1800, 3600],
            Application::Miranda => vec![256, 384, 384],
            Application::Rtm => vec![449, 449, 235],
            Application::Nyx => vec![512, 512, 512],
            Application::Isabel => vec![100, 500, 500],
            Application::Qmcpack => vec![33120, 69, 69],
            Application::Hacc => vec![16 * 1024 * 1024],
        }
    }

    /// Representative field names for this application.
    pub fn fields(&self) -> &'static [&'static str] {
        match self {
            Application::Cesm => &[
                "CLDHGH",
                "CLDMED",
                "FLDSC",
                "PCONVT",
                "TMQ",
                "TROP_Z",
                "ICEFRAC",
                "PSL",
                "FLNSC",
                "ODV_ocar2",
                "LHFLX",
                "TREFHT",
                "FSDTOA",
                "SNOWHICE",
            ],
            Application::Miranda => {
                &["density", "velocity-x", "velocity-y", "velocity-z", "diffusivity", "pressure", "viscosity"]
            }
            Application::Rtm => &["snapshot-0594", "snapshot-1048", "snapshot-1982", "snapshot-2800", "snapshot-3400"],
            Application::Nyx => &["baryon_density", "dark_matter_density", "temperature", "velocity_x"],
            Application::Isabel => {
                &["CLOUDf48_log10", "PRECIPf48_log10", "QSNOWf48_log10", "QVAPORf48", "Pf48", "Wf48", "TCf48", "Uf48"]
            }
            Application::Qmcpack => &["einspine"],
            Application::Hacc => &["vx", "vy", "xx"],
        }
    }
}

impl std::fmt::Display for Application {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully specified synthetic field: application, field name, scale, seed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FieldSpec {
    app: Application,
    field: String,
    scale: usize,
    seed: u64,
}

impl FieldSpec {
    /// Creates a spec at full paper dimensions (scale 1).
    pub fn new(app: Application, field: impl Into<String>) -> Self {
        FieldSpec { app, field: field.into(), scale: 1, seed: 0 }
    }

    /// Divides every dimension by `scale` (minimum extent 8), keeping the
    /// field's statistical structure. Scale 16 turns CESM's 1800×3600 into
    /// 112×225 — seconds instead of minutes per experiment.
    ///
    /// # Panics
    /// Panics if `scale == 0`.
    pub fn with_scale(mut self, scale: usize) -> Self {
        assert!(scale > 0, "scale must be positive");
        self.scale = scale;
        self
    }

    /// Perturbs the RNG seed (distinct snapshots of the same field).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The application.
    pub fn app(&self) -> Application {
        self.app
    }

    /// The field name.
    pub fn field(&self) -> &str {
        &self.field
    }

    /// The dimensions this spec will generate.
    pub fn dims(&self) -> Vec<usize> {
        self.app.default_dims().iter().map(|&d| (d / self.scale).max(8)).collect()
    }

    /// Uncompressed size in bytes (f32).
    pub fn nbytes(&self) -> usize {
        self.dims().iter().product::<usize>() * 4
    }

    /// Generates the field. Deterministic in `(app, field, scale, seed)`.
    ///
    /// Spectral content scales with resolution (wavenumbers are fixed *per
    /// grid cell*, not per domain), so per-point statistics — smoothness,
    /// Lorenzo error, compression ratio — are approximately scale-invariant
    /// and profiles measured on scaled-down fields extrapolate to full size.
    pub fn generate(&self) -> Dataset<f32> {
        let dims = self.dims();
        let full = self.app.default_dims();
        let seed = self.seed ^ fnv(self.app.name()) ^ fnv(&self.field).rotate_left(17);
        match self.app {
            Application::Cesm => cesm_field(&self.field, &dims, &full, seed),
            Application::Miranda => miranda_field(&self.field, &dims, &full, seed),
            Application::Rtm => rtm_field(&self.field, &dims, &full, seed),
            Application::Nyx => nyx_field(&self.field, &dims, &full, seed),
            Application::Isabel => isabel_field(&self.field, &dims, &full, seed),
            Application::Qmcpack => qmcpack_field(&dims, &full, seed),
            Application::Hacc => hacc_field(&self.field, &dims, &full, seed),
        }
    }
}

/// FNV-1a hash for seed derivation from names.
fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn cesm_field(field: &str, dims: &[usize], full: &[usize], seed: u64) -> Dataset<f32> {
    // (beta, lo, hi, sparsify threshold, noise)
    let (beta, lo, hi, sparse, noise): (f64, f64, f64, f64, f64) = match field {
        "CLDHGH" => (1.3, 0.0, 0.92, 0.25, 0.01), // patchy cloud fraction
        "CLDMED" => (1.2, 0.0, 0.95, 0.30, 0.01),
        "FLDSC" => (2.0, 92.84, 418.24, 0.0, 0.05),       // Table I range
        "PCONVT" => (2.4, 39025.27, 103207.45, 0.0, 5.0), // Table I range
        "TMQ" => (1.8, 0.3, 68.0, 0.0, 0.02),
        "TROP_Z" => (2.8, 5000.0, 18000.0, 0.0, 1.0), // very smooth → high PSNR
        "ICEFRAC" => (1.4, 0.0, 1.0, 0.55, 0.0),      // polar caps only
        "PSL" => (2.6, 95000.0, 105000.0, 0.0, 2.0),
        "FLNSC" => (1.9, 30.0, 180.0, 0.0, 0.2),
        "ODV_ocar2" => (1.5, 0.0, 2e-10, 0.2, 1e-13),
        "LHFLX" => (1.6, -20.0, 600.0, 0.0, 0.5),
        "TREFHT" => (2.3, 210.0, 315.0, 0.0, 0.05),
        "FSDTOA" => (2.9, 0.0, 1400.0, 0.0, 0.01), // near-deterministic insolation
        "SNOWHICE" => (1.5, 0.0, 1.2, 0.6, 0.0),   // sparse → huge ratios
        other => (1.8, 0.0, 1.0, 0.0, 0.01 + (fnv(other) % 8) as f64 * 0.002),
    };
    let mut d = SpectralConfig { modes: 56, beta, max_wavenumber: 28.0, seed }.generate_window(dims, full);
    if sparse > 0.0 {
        sparsify(&mut d, sparse as f32);
        // Re-normalize the surviving mass to [0,1].
        let (mn, mx) = d.min_max();
        if mx > mn {
            for v in d.values_mut() {
                *v = (*v - mn) / (mx - mn);
            }
        }
    }
    if noise > 0.0 {
        add_noise(&mut d, (noise / (hi - lo).abs().max(1e-30)) as f32, seed);
        for v in d.values_mut() {
            *v = v.clamp(0.0, 1.0);
        }
    }
    rescale(&mut d, lo as f32, hi as f32);
    d
}

fn miranda_field(field: &str, dims: &[usize], full: &[usize], seed: u64) -> Dataset<f32> {
    // Turbulence: shallow spectral slope; density/pressure smoother than
    // velocity components; viscosity near-uniform.
    let (beta, lo, hi) = match field {
        "density" => (1.7, 0.8, 3.2),
        "velocity-x" | "velocity-y" | "velocity-z" => (1.1, -1.6, 1.6),
        "diffusivity" => (1.4, 0.0, 0.05),
        "pressure" => (2.1, 0.9, 1.4),
        "viscosity" => (2.6, 1.0e-4, 3.0e-4),
        _ => (1.5, 0.0, 1.0),
    };
    let mut d = SpectralConfig { modes: 72, beta, max_wavenumber: 40.0, seed }.generate_window(dims, full);
    add_noise(&mut d, 0.004, seed);
    rescale(&mut d, lo, hi);
    d
}

fn rtm_field(field: &str, dims: &[usize], full: &[usize], seed: u64) -> Dataset<f32> {
    // "snapshot-NNNN" → wavefront at t = NNNN / 3600.
    let t = field.strip_prefix("snapshot-").and_then(|s| s.parse::<f64>().ok()).map(|n| n / 3600.0).unwrap_or(0.5);
    let mut d = SpectralConfig { modes: 40, beta: 1.0, max_wavenumber: 36.0, seed }.generate_window(dims, full);
    for v in d.values_mut() {
        *v = *v * 2.0 - 1.0; // zero-centred wavefield
    }
    wavefront(&mut d, dims, t, dims[0] as f64 / 18.0);
    // Later snapshots have weaker, more dispersed energy; the region the
    // wavefront has not reached (or has fully left) is exactly zero, as in
    // real RTM snapshots.
    let atten = (1.0 - 0.4 * t) as f32;
    let (mn, mx) = d.min_max();
    let floor = 1.0e-3 * mn.abs().max(mx.abs());
    for v in d.values_mut() {
        *v = if v.abs() < floor { 0.0 } else { *v * atten };
    }
    d
}

fn nyx_field(field: &str, dims: &[usize], full: &[usize], seed: u64) -> Dataset<f32> {
    match field {
        "baryon_density" | "dark_matter_density" => {
            // Log-normal density with huge dynamic range — the reason Nyx
            // ratios stay modest at tight bounds (Table V: CR 1.18 at 1e-6).
            let sigma = if field == "baryon_density" { 9.0 } else { 11.0 };
            let mut d = SpectralConfig { modes: 64, beta: 1.4, max_wavenumber: 48.0, seed }.generate_window(dims, full);
            exponentiate(&mut d, sigma);
            d
        }
        "temperature" => {
            let mut d = SpectralConfig { modes: 64, beta: 1.6, max_wavenumber: 32.0, seed }.generate_window(dims, full);
            exponentiate(&mut d, 5.0);
            rescale(&mut d, 0.0, 1.0e6);
            d
        }
        _ => {
            let mut d = SpectralConfig { modes: 64, beta: 1.3, max_wavenumber: 32.0, seed }.generate_window(dims, full);
            rescale(&mut d, -3000.0, 3000.0);
            d
        }
    }
}

fn isabel_field(field: &str, dims: &[usize], full: &[usize], seed: u64) -> Dataset<f32> {
    let log10 = field.ends_with("_log10");
    let (beta, lo, hi, sparse) = match field.trim_end_matches("_log10") {
        "CLOUDf48" => (1.2, 0.0, 0.002, 0.45),
        "PRECIPf48" => (1.1, 0.0, 0.01, 0.5),
        "QSNOWf48" => (1.3, 0.0, 0.0008, 0.55),
        "QVAPORf48" => (1.9, 0.0, 0.024, 0.0),
        "Pf48" => (2.5, -5000.0, 3200.0, 0.0),
        "Wf48" => (1.2, -9.0, 28.0, 0.0),
        "TCf48" => (2.2, -83.0, 31.0, 0.0),
        "Uf48" | "Vf48" => (1.4, -80.0, 85.0, 0.0),
        _ => (1.5, 0.0, 1.0, 0.0),
    };
    let mut d = SpectralConfig { modes: 60, beta, max_wavenumber: 36.0, seed }.generate_window(dims, full);
    // Sparsify before the vortex attenuation: the vortex scales most of the
    // domain well below any fixed threshold, so thresholding afterwards
    // zeroes nearly every cell and the mixing-ratio fields degenerate to
    // constants (no PSNR/feature variation across error bounds).
    if sparse > 0.0 {
        sparsify(&mut d, sparse);
        // Re-normalize the surviving mass to [0,1].
        let (mn, mx) = d.min_max();
        if mx > mn {
            for v in d.values_mut() {
                *v = (*v - mn) / (mx - mn);
            }
        }
    }
    vortex(&mut d, dims, 3, 0.8);
    rescale(&mut d, lo, hi);
    if log10 {
        // Shift to non-negative before the log transform, as the original
        // pre-processing does for the hurricane mixing-ratio fields.
        let (mn, _) = d.min_max();
        if mn < 0.0 {
            for v in d.values_mut() {
                *v -= mn;
            }
        }
        for v in d.values_mut() {
            *v *= 1.0e4;
        }
        log10_transform(&mut d);
    }
    d
}

fn qmcpack_field(dims: &[usize], full: &[usize], seed: u64) -> Dataset<f32> {
    // Orbitals: rapidly oscillating, moderately compressible.
    let mut d = SpectralConfig { modes: 96, beta: 0.9, max_wavenumber: 30.0, seed }.generate_window(dims, full);
    for v in d.values_mut() {
        *v = *v * 2.0 - 1.0;
    }
    d
}

fn hacc_field(field: &str, dims: &[usize], full: &[usize], seed: u64) -> Dataset<f32> {
    match field {
        "xx" => {
            // Particle positions: near-uniform in [0, 256) with clustering —
            // effectively incompressible at tight bounds (Table I).
            let mut d =
                SpectralConfig { modes: 24, beta: 0.4, max_wavenumber: 200.0, seed }.generate_window(dims, full);
            add_noise(&mut d, 0.35, seed);
            for v in d.values_mut() {
                *v = v.clamp(0.0, 1.0);
            }
            rescale(&mut d, 0.0, 256.0);
            d
        }
        _ => {
            // Velocities: heavy-tailed around zero, range ±~4000 (Table I).
            let mut d =
                SpectralConfig { modes: 48, beta: 0.8, max_wavenumber: 120.0, seed }.generate_window(dims, full);
            add_noise(&mut d, 0.15, seed);
            for v in d.values_mut() {
                let centred = (*v * 2.0 - 1.0).clamp(-1.0, 1.0);
                // Square keeps sign and fattens the tail; map back to [0,1]
                // so the rescale hits Table I's [-3846, 4031] exactly.
                *v = (centred * centred.abs() + 1.0) * 0.5;
            }
            rescale(&mut d, -3846.21, 4031.25);
            d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_sz::stats::value_stats;

    #[test]
    fn dims_scale_down_with_floor() {
        let spec = FieldSpec::new(Application::Isabel, "Pf48").with_scale(64);
        assert_eq!(spec.dims(), vec![8, 8, 8]); // 100/64 → floor 8
        let spec = FieldSpec::new(Application::Cesm, "PSL").with_scale(16);
        assert_eq!(spec.dims(), vec![112, 225]);
    }

    #[test]
    fn table1_ranges_are_respected() {
        // Paper Table I: CLDHGH range 0.92, FLDSC 325.4, PCONVT 64182,
        // HACC vx ±~4000, HACC xx 0..256.
        let cldhgh = value_stats(&FieldSpec::new(Application::Cesm, "CLDHGH").with_scale(16).generate());
        assert!(cldhgh.min >= -1e-3 && cldhgh.max <= 0.93, "{cldhgh:?}");
        let fldsc = value_stats(&FieldSpec::new(Application::Cesm, "FLDSC").with_scale(16).generate());
        assert!((fldsc.min - 92.84).abs() < 2.0 && (fldsc.max - 418.24).abs() < 2.0, "{fldsc:?}");
        let vx = value_stats(&FieldSpec::new(Application::Hacc, "vx").with_scale(64).generate());
        assert!(vx.min < -3000.0 && vx.max > 3000.0, "{vx:?}");
        let xx = value_stats(&FieldSpec::new(Application::Hacc, "xx").with_scale(64).generate());
        assert!(xx.min >= 0.0 && xx.max <= 256.0, "{xx:?}");
    }

    #[test]
    fn rtm_snapshots_expand_over_time() {
        // Early snapshot: energy near the centre; late: near the boundary.
        let early = FieldSpec::new(Application::Rtm, "snapshot-0300").with_scale(8).generate();
        let late = FieldSpec::new(Application::Rtm, "snapshot-3400").with_scale(8).generate();
        let dims = early.dims().to_vec();
        let c = [dims[0] / 2, dims[1] / 2, dims[2] / 2];
        let centre_energy = |d: &ocelot_sz::Dataset<f32>| {
            let mut e = 0.0f64;
            for i in 0..6 {
                e += (d.get(&[c[0], c[1], c[2] + i]) as f64).abs();
            }
            e
        };
        assert!(centre_energy(&early) > centre_energy(&late));
    }

    #[test]
    fn nyx_density_has_huge_dynamic_range() {
        let d = FieldSpec::new(Application::Nyx, "baryon_density").with_scale(16).generate();
        let s = value_stats(&d);
        // A scaled window holds a subset of the full field's extremes, so the
        // tail is milder than full-scale; still clearly heavy.
        assert!(s.max / s.mean > 5.0, "max={} mean={}", s.max, s.mean);
        assert!(s.min > 0.0);
    }

    #[test]
    fn snowhice_is_sparse() {
        let d = FieldSpec::new(Application::Cesm, "SNOWHICE").with_scale(16).generate();
        let zeros = d.values().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros as f64 / d.len() as f64 > 0.3, "zeros={zeros}/{}", d.len());
    }

    #[test]
    fn seeds_generate_distinct_snapshots() {
        let a = FieldSpec::new(Application::Miranda, "pressure").with_scale(16).with_seed(1).generate();
        let b = FieldSpec::new(Application::Miranda, "pressure").with_scale(16).with_seed(2).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn unknown_field_still_generates() {
        let d = FieldSpec::new(Application::Cesm, "NOT_A_FIELD").with_scale(16).generate();
        assert!(!d.is_empty());
    }

    #[test]
    fn smoother_cesm_fields_compress_better() {
        // TROP_Z (β=2.8) should compress much better than CLDHGH (β=1.3)
        // at the same relative bound — the application-dependent spread the
        // quality predictor must capture.
        let smooth = FieldSpec::new(Application::Cesm, "TROP_Z").with_scale(16).generate();
        let rough = FieldSpec::new(Application::Cesm, "CLDHGH").with_scale(16).generate();
        let cfg = ocelot_sz::LossyConfig::sz3(1e-3);
        let rs = ocelot_sz::compress(&smooth, &cfg).unwrap().ratio;
        let rr = ocelot_sz::compress(&rough, &cfg).unwrap().ratio;
        assert!(rs > rr, "smooth {rs} vs rough {rr}");
    }
}
