//! Temporally correlated snapshot series.
//!
//! Simulation output arrives as a time series of snapshots whose consecutive
//! frames are strongly correlated (the paper's CESM workload has 61
//! snapshots; its RTM workload 3601). This module generates AR(1)-blended
//! series: each frame is a convex combination of its predecessor and a fresh
//! field, giving a controllable frame-to-frame correlation for temporal
//! compression experiments.

use crate::apps::FieldSpec;
use ocelot_sz::Dataset;

/// Generates `n` snapshots of `spec` with AR(1) temporal correlation
/// `rho ∈ [0, 1)`: frame 0 is `spec` at seed `base_seed`, and each later
/// frame is `rho·previous + (1−rho)·fresh(seed+t)`.
///
/// `rho = 0` gives independent snapshots; `rho → 1` gives a nearly frozen
/// field.
///
/// # Panics
/// Panics if `n == 0` or `rho` is outside `[0, 1)`.
pub fn snapshot_series(spec: &FieldSpec, n: usize, rho: f32, base_seed: u64) -> Vec<Dataset<f32>> {
    assert!(n > 0, "at least one snapshot");
    assert!((0.0..1.0).contains(&rho), "correlation must be in [0, 1), got {rho}");
    let mut out: Vec<Dataset<f32>> = Vec::with_capacity(n);
    for t in 0..n {
        let fresh = spec.clone().with_seed(base_seed + t as u64).generate();
        if let Some(prev) = out.last() {
            let blended: Vec<f32> =
                prev.values().iter().zip(fresh.values()).map(|(&p, &f)| rho * p + (1.0 - rho) * f).collect();
            out.push(Dataset::new(fresh.dims().to_vec(), blended).expect("same shape"));
        } else {
            out.push(fresh);
        }
    }
    out
}

/// Sample Pearson correlation between consecutive frames of a series
/// (diagnostic; averaged over all adjacent pairs).
pub fn frame_correlation(series: &[Dataset<f32>]) -> f64 {
    if series.len() < 2 {
        return 1.0;
    }
    let mut total = 0.0;
    for pair in series.windows(2) {
        total += pearson(pair[0].values(), pair[1].values());
    }
    total / (series.len() - 1) as f64
}

fn pearson(x: &[f32], y: &[f32]) -> f64 {
    let n = x.len() as f64;
    let mx = x.iter().map(|&v| v as f64).sum::<f64>() / n;
    let my = y.iter().map(|&v| v as f64).sum::<f64>() / n;
    let (mut cov, mut vx, mut vy) = (0.0, 0.0, 0.0);
    for (&a, &b) in x.iter().zip(y) {
        let (da, db) = (a as f64 - mx, b as f64 - my);
        cov += da * db;
        vx += da * da;
        vy += db * db;
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::Application;

    fn spec() -> FieldSpec {
        FieldSpec::new(Application::Miranda, "density").with_scale(24)
    }

    #[test]
    fn series_has_requested_length_and_shapes() {
        let series = snapshot_series(&spec(), 5, 0.8, 0);
        assert_eq!(series.len(), 5);
        assert!(series.windows(2).all(|w| w[0].dims() == w[1].dims()));
    }

    #[test]
    fn higher_rho_means_higher_frame_correlation() {
        let weak = snapshot_series(&spec(), 6, 0.1, 3);
        let strong = snapshot_series(&spec(), 6, 0.9, 3);
        assert!(
            frame_correlation(&strong) > frame_correlation(&weak),
            "strong {} vs weak {}",
            frame_correlation(&strong),
            frame_correlation(&weak)
        );
        assert!(frame_correlation(&strong) > 0.9);
    }

    #[test]
    fn series_is_deterministic() {
        let a = snapshot_series(&spec(), 4, 0.5, 7);
        let b = snapshot_series(&spec(), 4, 0.5, 7);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "correlation must be in")]
    fn rho_one_is_rejected() {
        snapshot_series(&spec(), 2, 1.0, 0);
    }
}
