//! Seeded synthetic scientific datasets standing in for the paper's six
//! evaluation applications (plus HACC, which appears in Table I).
//!
//! The real datasets (CESM climate snapshots, Miranda hydrodynamics, RTM
//! seismic wavefields, Nyx cosmology, Hurricane ISABEL, QMCPACK orbitals) are
//! multi-terabyte archives that cannot ship with a reproduction. What the
//! compression pipeline and the quality predictor actually *see* of a dataset
//! is its statistical structure — smoothness spectrum, value range, sparsity,
//! dynamic range, oscillation — so each generator synthesizes a field with
//! the matching structure, deterministically from a seed.
//!
//! # Quickstart
//!
//! ```
//! use ocelot_datagen::{Application, FieldSpec};
//!
//! let spec = FieldSpec::new(Application::Cesm, "CLDHGH").with_scale(16);
//! let data = spec.generate();
//! assert_eq!(data.dims().len(), 2);
//! ```

pub mod apps;
pub mod series;
pub mod spectral;

pub use apps::{Application, FieldSpec};

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_sz::stats::value_stats;

    #[test]
    fn generation_is_deterministic() {
        let a = FieldSpec::new(Application::Miranda, "density").with_scale(8).generate();
        let b = FieldSpec::new(Application::Miranda, "density").with_scale(8).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_fields_differ() {
        let a = FieldSpec::new(Application::Cesm, "CLDHGH").with_scale(16).generate();
        let b = FieldSpec::new(Application::Cesm, "FLDSC").with_scale(16).generate();
        assert_ne!(a, b);
        let sa = value_stats(&a);
        let sb = value_stats(&b);
        assert!(sa.range < sb.range, "CLDHGH range {} should be far below FLDSC range {}", sa.range, sb.range);
    }

    #[test]
    fn every_application_generates_every_field() {
        for app in Application::ALL {
            for &field in app.fields() {
                let data = FieldSpec::new(app, field).with_scale(16).generate();
                assert!(!data.is_empty(), "{app:?}/{field} produced empty data");
                assert!(data.values().iter().all(|v| v.is_finite()), "{app:?}/{field} produced non-finite values");
            }
        }
    }
}
